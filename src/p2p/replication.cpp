#include "p2p/replication.hpp"

namespace ges::p2p {

void schedule_replica_heartbeats(EventQueue& queue, Network& network,
                                 SimTime interval) {
  queue.schedule_every(interval, [&network] {
    for (const NodeId node : network.alive_nodes()) {
      network.refresh_replicas(node);
    }
  });
}

}  // namespace ges::p2p
