#include "p2p/capacity.hpp"

#include "util/check.hpp"

namespace ges::p2p {

CapacityProfile::CapacityProfile(std::vector<Capacity> levels,
                                 std::vector<double> probabilities,
                                 Capacity supernode_threshold)
    : levels_(std::move(levels)),
      probabilities_(std::move(probabilities)),
      supernode_threshold_(supernode_threshold) {
  GES_CHECK(!levels_.empty());
  GES_CHECK(levels_.size() == probabilities_.size());
}

CapacityProfile CapacityProfile::uniform(Capacity capacity) {
  // With uniform capacities no node is "super"; use an unreachable
  // threshold so the capacity-aware branch never triggers.
  return CapacityProfile({capacity}, {1.0}, capacity * 1e9);
}

CapacityProfile CapacityProfile::gnutella() {
  return CapacityProfile({1.0, 10.0, 100.0, 1'000.0, 10'000.0},
                         {0.20, 0.45, 0.30, 0.049, 0.001}, 1'000.0);
}

Capacity CapacityProfile::sample(util::Rng& rng) const {
  if (levels_.size() == 1) return levels_[0];
  return levels_[rng.weighted_index(probabilities_)];
}

std::vector<Capacity> CapacityProfile::sample_many(size_t n, util::Rng& rng) const {
  std::vector<Capacity> out(n);
  for (auto& c : out) c = sample(rng);
  return out;
}

}  // namespace ges::p2p
