#pragma once

#include <cstdint>
#include <vector>

#include "p2p/event_sim.hpp"
#include "p2p/fault_injection.hpp"
#include "p2p/network.hpp"

namespace ges::p2p {

/// Per-node replica heartbeat loops (paper §4.4: "a node periodically
/// checks the replicated node vectors through heartbeat messages with
/// each random neighbor"). Every registered node runs its own repeating
/// event; each firing sends one heartbeat message per random neighbor,
/// re-copying that neighbor's current node vector, so replicas converge
/// within one `interval` of any document change.
///
/// Each loop is one cancellable periodic timer (EventQueue::schedule_every).
/// A node's loop dies with the node: ChurnProcess suspends it at the
/// departure (suspend_node cancels the timer, so a dead node owns zero
/// live timers — asserted by the overlay invariant sweep), and a node
/// deactivated outside churn is caught by the next firing, which cancels
/// itself. A rejoining node must be re-registered (ChurnProcess does this
/// when wired to the process) — exactly the soft-state re-registration
/// real Gnutella peers perform. Re-registration before the suspended
/// timer's fire time resumes it in place, preserving the node's original
/// heartbeat phase and tie-break position (byte-identical to the old
/// zombie-loop scheduler); after that time it starts a fresh loop
/// phase-aligned to now().
///
/// With a FaultInjector, each per-neighbor heartbeat can be lost
/// (heartbeat_loss_rate or a partition cut) — the replica simply stays
/// stale until the next interval retries — or delayed/duplicated through
/// the event queue; delayed refreshes are safe no-ops when the link or
/// node they refer to is gone by delivery time.
///
/// The network, queue and injector must outlive the process.
class ReplicaHeartbeatProcess {
 public:
  ReplicaHeartbeatProcess(Network& network, EventQueue& queue, SimTime interval,
                          const FaultInjector* faults = nullptr);

  /// Register every currently-alive node, phase-aligned to now().
  void start();

  /// (Re)start `node`'s heartbeat loop; no-op while a loop is active.
  /// Resumes a suspended (not yet expired) timer in its original phase,
  /// otherwise starts a fresh periodic timer.
  void register_node(NodeId node);

  /// Cancel `node`'s heartbeat timer (churn departure). The timer stays
  /// resumable until its fire time passes; no-op when not registered.
  void suspend_node(NodeId node);

  /// Whether `node` currently has a live heartbeat loop.
  bool registered(NodeId node) const { return active_[node] != 0; }

  /// Live event-queue timers owned by `node` (0 or 1) — wired into the
  /// overlay invariant sweep: a churned-out node must own none.
  size_t live_timer_count(NodeId node) const {
    return node < timers_.size() && timers_[node].live() ? 1 : 0;
  }

  size_t beats() const { return beats_; }
  size_t heartbeats_sent() const { return sent_; }
  size_t heartbeats_lost() const { return lost_; }

  /// Exact Wire-format-v1 bytes of the heartbeat traffic (p2p/wire.hpp):
  /// one ReplicaHeartbeat request frame per sent heartbeat, plus — for
  /// every request that was not lost — one NodeVectorUpdate response
  /// frame carrying the neighbor's truncated vector, sized at send time.
  uint64_t heartbeat_bytes() const { return bytes_; }

  /// Byte accounting toggle (default on). Strictly additive: heartbeat
  /// delivery, loss and refresh behaviour are identical either way.
  void set_account_bytes(bool on) { account_bytes_ = on; }

  /// Sim time `node`'s loop last fired; -1 when it never has. Feeds the
  /// health monitor's heartbeat-staleness gauge (observation only).
  SimTime last_beat(NodeId node) const {
    return node < last_beat_.size() ? last_beat_[node] : -1.0;
  }

 private:
  void beat(NodeId node);

  Network* network_;
  EventQueue* queue_;
  SimTime interval_;
  const FaultInjector* faults_;
  std::vector<uint8_t> active_;      // node -> loop registered
  std::vector<TimerHandle> timers_;  // node -> periodic beat timer
  std::vector<uint64_t> ticks_;      // node -> heartbeat tick (fault nonce)
  std::vector<SimTime> last_beat_;   // node -> last firing time (-1 = never)
  size_t beats_ = 0;             // node-level firings
  size_t sent_ = 0;              // per-neighbor heartbeat messages
  size_t lost_ = 0;              // lost to drops / partitions
  uint64_t bytes_ = 0;           // wire bytes (requests + responses)
  bool account_bytes_ = true;
};

/// Legacy convenience: one global repeating event refreshing every alive
/// node's replicas. No per-node registration, no fault injection; prefer
/// ReplicaHeartbeatProcess for churn/fault scenarios.
void schedule_replica_heartbeats(EventQueue& queue, Network& network,
                                 SimTime interval);

}  // namespace ges::p2p
