#pragma once

#include <cstdint>
#include <vector>

#include "p2p/event_sim.hpp"
#include "p2p/fault_injection.hpp"
#include "p2p/network.hpp"

namespace ges::p2p {

/// Per-node replica heartbeat loops (paper §4.4: "a node periodically
/// checks the replicated node vectors through heartbeat messages with
/// each random neighbor"). Every registered node runs its own repeating
/// event; each firing sends one heartbeat message per random neighbor,
/// re-copying that neighbor's current node vector, so replicas converge
/// within one `interval` of any document change.
///
/// A node's loop dies with the node: when it churns out, the next firing
/// notices and stops rescheduling. A rejoining node must therefore be
/// re-registered (ChurnProcess does this when wired to the process) —
/// exactly the soft-state re-registration real Gnutella peers perform.
///
/// With a FaultInjector, each per-neighbor heartbeat can be lost
/// (heartbeat_loss_rate or a partition cut) — the replica simply stays
/// stale until the next interval retries — or delayed/duplicated through
/// the event queue; delayed refreshes are safe no-ops when the link or
/// node they refer to is gone by delivery time.
///
/// The network, queue and injector must outlive the process.
class ReplicaHeartbeatProcess {
 public:
  ReplicaHeartbeatProcess(Network& network, EventQueue& queue, SimTime interval,
                          const FaultInjector* faults = nullptr);

  /// Register every currently-alive node, phase-aligned to now().
  void start();

  /// (Re)start `node`'s heartbeat loop; no-op while a loop is active.
  void register_node(NodeId node);

  /// Whether `node` currently has a live heartbeat loop.
  bool registered(NodeId node) const { return active_[node] != 0; }

  size_t beats() const { return beats_; }
  size_t heartbeats_sent() const { return sent_; }
  size_t heartbeats_lost() const { return lost_; }

 private:
  void beat(NodeId node);

  Network* network_;
  EventQueue* queue_;
  SimTime interval_;
  const FaultInjector* faults_;
  std::vector<uint8_t> active_;  // node -> loop scheduled
  std::vector<uint64_t> ticks_;  // node -> heartbeat tick (fault nonce)
  size_t beats_ = 0;             // node-level firings
  size_t sent_ = 0;              // per-neighbor heartbeat messages
  size_t lost_ = 0;              // lost to drops / partitions
};

/// Legacy convenience: one global repeating event refreshing every alive
/// node's replicas. No per-node registration, no fault injection; prefer
/// ReplicaHeartbeatProcess for churn/fault scenarios.
void schedule_replica_heartbeats(EventQueue& queue, Network& network,
                                 SimTime interval);

}  // namespace ges::p2p
