#pragma once

#include "p2p/event_sim.hpp"
#include "p2p/network.hpp"

namespace ges::p2p {

/// Schedule periodic replica heartbeats for every node (paper §4.4: "a
/// node periodically checks the replicated node vectors through heartbeat
/// messages with each random neighbor"). Each heartbeat re-copies the
/// current node vectors of the node's random neighbors, so replicas
/// converge within one `interval` of any document change.
///
/// The network and queue must outlive the scheduled events.
void schedule_replica_heartbeats(EventQueue& queue, Network& network,
                                 SimTime interval);

}  // namespace ges::p2p
