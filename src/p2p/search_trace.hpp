#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ir/types.hpp"
#include "p2p/types.hpp"

namespace ges::p2p {

/// One document retrieved during a search, with the probe at which it was
/// found. probe_index indexes SearchTrace::probe_order.
struct RetrievedDoc {
  ir::DocId doc = ir::kInvalidDoc;
  double score = 0.0;
  uint32_t probe_index = 0;

  friend bool operator==(const RetrievedDoc& a, const RetrievedDoc& b) {
    return a.doc == b.doc && a.score == b.score && a.probe_index == b.probe_index;
  }
};

/// Instrumented record of one query execution, shared by GES and the
/// baselines. `probe_order` lists the distinct nodes that evaluated the
/// query, in evaluation order; recall@cost for *every* cost level can be
/// derived from one exhaustive run (DESIGN.md §3), mirroring the paper's
/// "% nodes probed" axis.
struct SearchTrace {
  std::vector<NodeId> probe_order;
  std::vector<RetrievedDoc> retrieved;

  size_t walk_steps = 0;       // biased/random walk hops
  size_t flood_messages = 0;   // messages sent while flooding
  size_t target_count = 0;     // semantic-group target nodes hit (GES)

  /// Query-data-plane diagnostics: REL(X, Q) evaluations the walk policy
  /// actually computed, and lookups served by the per-query relevance
  /// memo instead. Deliberately excluded from operator== — the memo
  /// changes *work*, never the trace, so workspace-on and workspace-off
  /// runs must compare equal while reporting different eval counts.
  uint64_t rel_evals = 0;
  uint64_t rel_memo_hits = 0;

  /// Result-cache diagnostic: how many cache hits this query was served
  /// from (0 = fully fresh execution). Excluded from operator== like the
  /// memo counters — equivalence suites compare cached traces against
  /// fresh ones, which must be equal while reporting different hit
  /// counts.
  uint64_t cache_hits = 0;

  /// Exact wire bytes of the query messages this trace counts: one
  /// Wire-format-v1 frame per walk step (WalkQuery) and per flood edge
  /// (FloodForward) — see docs/PROTOCOL.md. Excluded from operator==:
  /// bytes are a strictly additive cost dimension (0 when accounting is
  /// off), and golden traces predate it.
  uint64_t bytes_sent = 0;

  size_t probes() const { return probe_order.size(); }
  size_t messages() const { return walk_steps + flood_messages; }

  /// Exact equality (determinism / golden-trace tests).
  friend bool operator==(const SearchTrace& a, const SearchTrace& b) {
    return a.probe_order == b.probe_order && a.retrieved == b.retrieved &&
           a.walk_steps == b.walk_steps && a.flood_messages == b.flood_messages &&
           a.target_count == b.target_count;
  }
};

}  // namespace ges::p2p
