#include "p2p/cache_protocol.hpp"

#include <bit>

#include "p2p/network.hpp"

namespace ges::p2p {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

uint64_t fnv_mix(uint64_t h, uint64_t v) { return (h ^ v) * kFnvPrime; }

}  // namespace

QuerySignature query_signature(const ir::SparseVector& query) {
  // SparseVector stores unique ascending terms, so folding entries in
  // storage order IS the canonical sorted fold. Weights are hashed by
  // their exact float bit pattern: the cache must only unify queries
  // whose evaluation is bit-identical, so "close" weights stay distinct.
  uint64_t h = fnv_mix(kFnvOffset, query.size());
  const auto terms = query.terms();
  const auto weights = query.weights();
  for (size_t i = 0; i < query.size(); ++i) {
    h = fnv_mix(h, terms[i]);
    h = fnv_mix(h, std::bit_cast<uint32_t>(weights[i]));
  }
  return QuerySignature{h};
}

const char* cache_validity_name(CacheValidity validity) {
  switch (validity) {
    case CacheValidity::kValid: return "valid";
    case CacheValidity::kExpired: return "expired";
    case CacheValidity::kOwnerDead: return "owner_dead";
    case CacheValidity::kOwnerChanged: return "owner_changed";
  }
  return "unknown";
}

CacheValidity validate_cache_entry(const Network& network,
                                   const std::vector<CachedResultDoc>& docs,
                                   const CacheEntryMeta& meta, SimTime now) {
  if (meta.expires_at > 0.0 && now >= meta.expires_at) {
    return CacheValidity::kExpired;
  }
  // Fast path: nothing content- or membership-relevant happened anywhere
  // in the network since the store, so every owner is still alive with an
  // unchanged index.
  if (network.content_stamp() == meta.content_stamp) {
    return CacheValidity::kValid;
  }
  // Slow path: per-owner revalidation. The same owner usually appears in
  // runs (results are stored in probe order), so skip repeated checks.
  NodeId checked = kInvalidNode;
  for (const CachedResultDoc& d : docs) {
    if (d.owner == checked) continue;
    if (!network.alive(d.owner)) return CacheValidity::kOwnerDead;
    if (network.node_vector_version(d.owner) != d.owner_version) {
      return CacheValidity::kOwnerChanged;
    }
    checked = d.owner;
  }
  return CacheValidity::kValid;
}

}  // namespace ges::p2p
