#pragma once

#include <functional>
#include <string>
#include <vector>

#include "p2p/network.hpp"

namespace ges::p2p {

/// What check_overlay_invariants verifies beyond the always-on structural
/// core (link symmetry and type agreement, no self/parallel links, no
/// links to dead nodes, replica set == random-neighbor set, host-cache
/// size bounds and entry sanity).
struct InvariantOptions {
  /// Per-node cap on semantic links; empty = skip the check. The
  /// adaptation layer owns degree policy, so the caller supplies the
  /// bound (e.g. GesParams::max_sem_links of the node's capacity).
  std::function<size_t(NodeId)> max_semantic_links;

  /// Per-node cap on total links; empty = skip.
  std::function<size_t(NodeId)> max_total_links;

  /// Allowance on top of max_total_links for links installed outside the
  /// adaptation's accept rules (bootstrap joins of churned-in nodes
  /// connect without consulting the degree policy).
  size_t degree_slack = 0;

  /// Require every replica to equal its source node vector. Only valid
  /// in a quiescent network right after a lossless heartbeat; the
  /// general guarantee is convergence within one heartbeat interval.
  bool expect_fresh_replicas = false;

  /// Live event-queue timers owned by a node (e.g.
  /// ReplicaHeartbeatProcess::live_timer_count); empty = skip. A dead
  /// node owning a live timer is a leak: the churn layer must cancel or
  /// suspend per-node timers at departure.
  std::function<size_t(NodeId)> live_timers;

  /// Query-result-cache liveness (ges::core::ResultCacheBank accessors);
  /// empty = skip. `result_cache_entries` is the entry count of a node's
  /// cache — a dead node must hold none (flushed at departure) —
  /// and `result_cache_dead_owner_docs` counts cached result documents
  /// whose owner is currently dead — must be zero on every alive node
  /// whenever eager churn invalidation is wired.
  std::function<size_t(NodeId)> result_cache_entries;
  std::function<size_t(NodeId)> result_cache_dead_owner_docs;
};

struct InvariantViolation {
  NodeId node = kInvalidNode;
  std::string message;
};

/// Outcome of one invariant sweep. `violations` is empty on a clean
/// overlay; the `*_checked` tallies let tests assert the sweep actually
/// covered something.
struct InvariantReport {
  std::vector<InvariantViolation> violations;
  size_t nodes_checked = 0;
  size_t links_checked = 0;
  size_t replicas_checked = 0;
  size_t cache_entries_checked = 0;
  size_t result_cache_nodes_checked = 0;

  bool ok() const { return violations.empty(); }

  /// All violation messages, newline-joined ("" when ok).
  std::string to_string() const;
};

/// Sweep every node of the overlay and report violations instead of
/// throwing — the scenario fuzzer collects everything wrong with a
/// topology in one pass. O(V + E).
InvariantReport check_overlay_invariants(const Network& network,
                                         const InvariantOptions& options = {});

/// Throwing form: util::CheckFailure listing every violation. Backing
/// implementation of Network::check_invariants().
void expect_overlay_invariants(const Network& network,
                               const InvariantOptions& options = {});

}  // namespace ges::p2p
