#pragma once

#include <iosfwd>
#include <string>

#include "p2p/network.hpp"

namespace ges::p2p {

/// Checkpointing of an overlay's *topology*: capacities, alive flags and
/// typed links. Content state (documents, node vectors, indices) is
/// rebuilt from the corpus on load, and replicas are re-installed by the
/// link creation itself; host caches are transient soft state and are
/// not saved (the adaptation refills them within a round).
///
/// A snapshot embeds a fingerprint of the corpus it was taken over
/// (node/document/vocabulary counts); loading it against a different
/// corpus fails with util::CheckFailure. Adapting a full-scale overlay
/// takes minutes — snapshot it once, reload in seconds.
void save_network_snapshot(const Network& network, std::ostream& out);

/// Rebuild a network over `corpus` (which must match the snapshot's
/// fingerprint) and restore the saved topology.
Network load_network_snapshot(const corpus::Corpus& corpus, std::istream& in,
                              NetworkConfig config);

/// File convenience wrappers.
void save_network_snapshot_file(const Network& network, const std::string& path);
Network load_network_snapshot_file(const corpus::Corpus& corpus,
                                   const std::string& path, NetworkConfig config);

}  // namespace ges::p2p
