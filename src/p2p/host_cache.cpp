#include "p2p/host_cache.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace ges::p2p {

HostCache::HostCache(size_t max_size) : max_size_(max_size) {
  GES_CHECK(max_size > 0);
}

void HostCache::insert(HostCacheEntry entry) {
  GES_CHECK(entry.node != kInvalidNode);
  const auto it = index_.find(entry.node);
  if (it != index_.end()) {
    slots_[it->second] = std::move(entry);  // refresh in place, keep FIFO position
    return;
  }
  if (order_.size() >= max_size_) {
    // Evict the oldest entry.
    const size_t victim = order_.front();
    order_.erase(order_.begin());
    index_.erase(slots_[victim].node);
    free_slots_.push_back(victim);
  }
  size_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    slots_[slot] = std::move(entry);
  } else {
    slot = slots_.size();
    slots_.push_back(std::move(entry));
  }
  index_.emplace(slots_[slot].node, slot);
  order_.push_back(slot);
}

bool HostCache::erase(NodeId node) {
  const auto it = index_.find(node);
  if (it == index_.end()) return false;
  const size_t slot = it->second;
  order_.erase(std::find(order_.begin(), order_.end(), slot));
  free_slots_.push_back(slot);
  index_.erase(it);
  return true;
}

const HostCacheEntry* HostCache::find(NodeId node) const {
  const auto it = index_.find(node);
  return it == index_.end() ? nullptr : &slots_[it->second];
}

std::vector<const HostCacheEntry*> HostCache::entries() const {
  std::vector<const HostCacheEntry*> out;
  out.reserve(order_.size());
  for (const size_t slot : order_) out.push_back(&slots_[slot]);
  return out;
}

const HostCacheEntry* HostCache::best_by_relevance(
    const std::function<bool(const HostCacheEntry&)>& acceptable) const {
  const HostCacheEntry* best = nullptr;
  for (const size_t slot : order_) {
    const auto& e = slots_[slot];
    if (!acceptable(e)) continue;
    if (best == nullptr || e.rel_score > best->rel_score) best = &e;
  }
  return best;
}

const HostCacheEntry* HostCache::best_by_capacity(
    const std::function<bool(const HostCacheEntry&)>& acceptable) const {
  const HostCacheEntry* best = nullptr;
  for (const size_t slot : order_) {
    const auto& e = slots_[slot];
    if (!acceptable(e)) continue;
    if (best == nullptr || e.capacity > best->capacity) best = &e;
  }
  return best;
}

}  // namespace ges::p2p
