#include "p2p/churn.hpp"

#include "obs/telemetry.hpp"

namespace ges::p2p {

ChurnProcess::ChurnProcess(Network& network, EventQueue& queue, ChurnParams params)
    : network_(&network),
      queue_(&queue),
      params_(params),
      rng_(params.seed),
      sessions_(network.size()) {}

void ChurnProcess::start() {
  for (const NodeId node : network_->alive_nodes()) schedule_departure(node);
}

size_t ChurnProcess::stop() {
  size_t stopped = 0;
  for (auto& session : sessions_) stopped += session.cancel() ? 1 : 0;
  return stopped;
}

void ChurnProcess::schedule_departure(NodeId node) {
  const double delay = rng_.exponential(1.0 / params_.mean_session);
  sessions_[node] = queue_->schedule_after(delay, [this, node] {
    if (!network_->alive(node)) return;
    network_->deactivate(node);
    // The node's timers die with it: a churned-out node must own zero
    // live heartbeat timers (checked by the overlay invariant sweep).
    if (heartbeats_ != nullptr) heartbeats_->suspend_node(node);
    // Likewise its cached query results: the departed node's own cache
    // flushes and every result it owns invalidates network-wide.
    if (result_cache_ != nullptr) result_cache_->on_node_departed(node);
    ++departures_;
    GES_COUNT("p2p.churn.departures", 1);
    GES_INSTANT("leave", "churn", node);
    schedule_arrival(node);
  });
}

void ChurnProcess::schedule_arrival(NodeId node) {
  const double delay = rng_.exponential(1.0 / params_.mean_downtime);
  sessions_[node] = queue_->schedule_after(delay, [this, node] {
    if (network_->alive(node)) return;
    network_->activate(node);
    bootstrap_join(*network_, node, params_.bootstrap_links, rng_);
    // Rejoin is more than new links: the node's heartbeat timer was
    // suspended with it (resumed in-phase when still pending), and the
    // fresh bootstrap links may already qualify as semantic.
    if (heartbeats_ != nullptr) heartbeats_->register_node(node);
    if (rejoin_hook_) rejoin_hook_(node);
    ++arrivals_;
    GES_COUNT("p2p.churn.arrivals", 1);
    GES_INSTANT("join", "churn", node);
    schedule_departure(node);
  });
}

}  // namespace ges::p2p
