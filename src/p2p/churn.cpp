#include "p2p/churn.hpp"

#include "obs/telemetry.hpp"

namespace ges::p2p {

ChurnProcess::ChurnProcess(Network& network, EventQueue& queue, ChurnParams params)
    : network_(&network), queue_(&queue), params_(params), rng_(params.seed) {}

void ChurnProcess::start() {
  for (const NodeId node : network_->alive_nodes()) schedule_departure(node);
}

void ChurnProcess::schedule_departure(NodeId node) {
  const double delay = rng_.exponential(1.0 / params_.mean_session);
  queue_->schedule_after(delay, [this, node] {
    if (!network_->alive(node)) return;
    network_->deactivate(node);
    ++departures_;
    GES_COUNT("p2p.churn.departures", 1);
    GES_INSTANT("leave", "churn", node);
    schedule_arrival(node);
  });
}

void ChurnProcess::schedule_arrival(NodeId node) {
  const double delay = rng_.exponential(1.0 / params_.mean_downtime);
  queue_->schedule_after(delay, [this, node] {
    if (network_->alive(node)) return;
    network_->activate(node);
    bootstrap_join(*network_, node, params_.bootstrap_links, rng_);
    // Rejoin is more than new links: the node's heartbeat loop died with
    // it, and the fresh bootstrap links may already qualify as semantic.
    if (heartbeats_ != nullptr) heartbeats_->register_node(node);
    if (rejoin_hook_) rejoin_hook_(node);
    ++arrivals_;
    GES_COUNT("p2p.churn.arrivals", 1);
    GES_INSTANT("join", "churn", node);
    schedule_departure(node);
  });
}

}  // namespace ges::p2p
