#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/telemetry.hpp"
#include "p2p/event_sim.hpp"
#include "p2p/types.hpp"

namespace ges::p2p {

/// Which protocol a faulted message belongs to. Channels seed independent
/// decision streams, so e.g. raising the walk drop rate never changes
/// which heartbeats are lost under the same FaultPlan seed.
enum class FaultChannel : uint8_t {
  kWalk = 1,       // discovery / search walk hops
  kFlood = 2,      // semantic-group flood messages
  kHandshake = 3,  // topology-adaptation three-way handshake legs
  kHeartbeat = 4,  // replica heartbeat messages
  kGossip = 5,     // host-cache gossip exchanges
};

/// Lower-case channel label ("walk", "flood", ...) — used for telemetry
/// metric names like p2p.fault.dropped.walk.
const char* fault_channel_name(FaultChannel channel);

/// Seeded description of every fault the simulator can inject (the fault
/// taxonomy of DESIGN.md §9). All-zero rates mean a fault-free run: the
/// injector then makes no random decisions at all, so protocol RNG
/// streams — and therefore regression traces — are byte-identical to a
/// run without any injector wired in.
struct FaultPlan {
  /// Per-message loss probability (walks, floods, handshake legs, gossip).
  double drop_rate = 0.0;

  /// Probability that a delivered message is late, and the uniform bound
  /// on the extra delivery delay (event-queue protocols only).
  double delay_rate = 0.0;
  SimTime max_delay = 2.0;

  /// Probability that a delivered message arrives twice (protocols are
  /// expected to be idempotent / discard duplicates by GUID).
  double duplicate_rate = 0.0;

  /// Probability that the remote endpoint of a handshake dies after
  /// accepting but before the commit leg (paper §4.2's motivation for
  /// three-way handshakes under Gnutella-scale churn).
  double handshake_death_rate = 0.0;

  /// Per-neighbor heartbeat loss probability (paper §4.4 replica checks);
  /// a lost heartbeat leaves the replica stale until the next interval.
  double heartbeat_loss_rate = 0.0;

  /// Burst partitions: with this per-round probability, a random
  /// `partition_fraction` of the alive nodes is cut off from the rest for
  /// `partition_rounds` adaptation rounds. Messages across the cut are
  /// lost; messages within either side are unaffected.
  double partition_rate = 0.0;
  double partition_fraction = 0.2;
  size_t partition_rounds = 2;

  uint64_t seed = 1;

  /// True when any fault can ever fire.
  bool enabled() const {
    return drop_rate > 0.0 || delay_rate > 0.0 || duplicate_rate > 0.0 ||
           handshake_death_rate > 0.0 || heartbeat_loss_rate > 0.0 ||
           partition_rate > 0.0;
  }

  /// Uniform message-level fault preset: drop `rate` everywhere, lose
  /// heartbeats at `rate`, kill handshake peers at `rate` / 4.
  static FaultPlan uniform(double rate, uint64_t seed);
};

/// Tallies of the faults actually fired (diagnostics; atomic so the
/// parallel plan phase of an adaptation round can count concurrently).
struct FaultCounters {
  std::atomic<uint64_t> messages_dropped{0};
  std::atomic<uint64_t> messages_delayed{0};
  std::atomic<uint64_t> messages_duplicated{0};
  std::atomic<uint64_t> messages_blocked{0};  // lost crossing a partition
  std::atomic<uint64_t> heartbeats_lost{0};
  std::atomic<uint64_t> handshake_deaths{0};
  std::atomic<uint64_t> partitions_started{0};
};

/// Deterministic fault oracle threaded through message delivery. Every
/// decision is a pure hash of (plan seed, channel, key, nonce) — no
/// internal RNG stream — so decisions are independent of call order and
/// the parallel plan phase of an adaptation round sees exactly the faults
/// the serial phase would. Callers supply `key` (usually the directed
/// pair of endpoints) and `nonce` (round / tick / per-message sequence)
/// to separate repeated decisions about the same edge.
///
/// Partition state is mutated serially via begin_round() and read
/// concurrently; the rest of the class is const and thread-safe.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan) : plan_(plan) {}

  const FaultPlan& plan() const { return plan_; }
  bool enabled() const { return plan_.enabled(); }

  /// Directed edge key for per-message decisions.
  static uint64_t pair_key(NodeId from, NodeId to) {
    return (static_cast<uint64_t>(from) << 32) | static_cast<uint64_t>(to);
  }

  // --- Stateless per-message decisions --------------------------------

  /// Message lost in transit (does not include partition cuts; callers
  /// check blocked() first so the two are counted separately).
  bool drop_message(FaultChannel channel, uint64_t key, uint64_t nonce) const;

  /// Extra delivery delay in [0, max_delay); 0.0 = on time.
  SimTime delivery_delay(FaultChannel channel, uint64_t key, uint64_t nonce) const;

  /// Message delivered twice.
  bool duplicate_message(FaultChannel channel, uint64_t key, uint64_t nonce) const;

  /// Heartbeat from `key` (owner, neighbor) lost this tick.
  bool lose_heartbeat(uint64_t key, uint64_t nonce) const;

  /// The remote endpoint of handshake `key` dies mid-handshake.
  bool kill_mid_handshake(uint64_t key, uint64_t nonce) const;

  /// Schedule `handler` on `queue` subject to drop / extra delay /
  /// duplication on `channel`. Returns false when the message was dropped
  /// (nothing scheduled). `base_delay` is the fault-free latency.
  bool deliver(EventQueue& queue, FaultChannel channel, uint64_t key, uint64_t nonce,
               SimTime base_delay, std::function<void()> handler) const;

  // --- Burst partitions (serial mutation, concurrent reads) -----------

  /// Advance partition state to `round`: expire a finished partition and
  /// maybe start a new one over the given alive set. Call once per
  /// adaptation round, before any plan-phase reads.
  void begin_round(const std::vector<NodeId>& alive, uint64_t round);

  bool partition_active() const { return !partitioned_.empty(); }
  bool partitioned(NodeId node) const { return partitioned_.count(node) > 0; }

  /// True when a message between `a` and `b` would cross the cut.
  bool blocked(NodeId a, NodeId b) const {
    if (partitioned_.empty()) return false;
    const bool cut = partitioned(a) != partitioned(b);
    if (cut) {
      ++counters_.messages_blocked;
      GES_COUNT("p2p.fault.blocked", 1);
#if GES_OBS
      // Flight-recorder hook: when a query is being recorded on this
      // thread, the cut becomes a causal event under the hop/flood-send
      // being decided. Observation only (no RNG, no protocol state).
      if (obs::FlightBuilder* fb = obs::flight_sink()) {
        const int32_t id =
            fb->add(obs::FlightEventKind::kFaultBlock, obs::global().now());
        if (obs::FlightEvent* ev = fb->event(id)) {
          ev->from = a;
          ev->to = b;
        }
      }
#endif
    }
    return cut;
  }

  const FaultCounters& counters() const { return counters_; }

 private:
  /// Uniform [0, 1) decision variate for (channel, key, nonce, salt).
  double unit(FaultChannel channel, uint64_t key, uint64_t nonce, uint64_t salt) const;

  FaultPlan plan_;
  std::unordered_set<NodeId> partitioned_;
  uint64_t partition_expires_round_ = 0;
  mutable FaultCounters counters_;
};

}  // namespace ges::p2p
