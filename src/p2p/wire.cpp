#include "p2p/wire.hpp"

#include <bit>
#include <cstring>

namespace ges::p2p::wire {
namespace {

// --- Little-endian writers (explicit shifts: host-endian independent) ---

void put_u8(std::vector<uint8_t>& out, uint8_t v) { out.push_back(v); }

void put_u32(std::vector<uint8_t>& out, uint32_t v) {
  out.push_back(static_cast<uint8_t>(v));
  out.push_back(static_cast<uint8_t>(v >> 8));
  out.push_back(static_cast<uint8_t>(v >> 16));
  out.push_back(static_cast<uint8_t>(v >> 24));
}

void put_u64(std::vector<uint8_t>& out, uint64_t v) {
  put_u32(out, static_cast<uint32_t>(v));
  put_u32(out, static_cast<uint32_t>(v >> 32));
}

void put_f32(std::vector<uint8_t>& out, float v) {
  put_u32(out, std::bit_cast<uint32_t>(v));
}

void put_f64(std::vector<uint8_t>& out, double v) {
  put_u64(out, std::bit_cast<uint64_t>(v));
}

void put_varint(std::vector<uint8_t>& out, uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<uint8_t>(v));
}

void put_sparse_vector(std::vector<uint8_t>& out, const ir::SparseVector& v) {
  put_varint(out, v.size());
  for (ir::TermId t : v.terms()) put_u32(out, t);
  for (float w : v.weights()) put_f32(out, w);
}

// --- Bounded reader ------------------------------------------------------
// Every read is bounds-checked against the window it was constructed
// over; a failed read returns false and leaves the output untouched.

class Reader {
 public:
  Reader(const uint8_t* data, std::size_t size) : data_(data), size_(size) {}

  std::size_t offset() const { return off_; }
  std::size_t remaining() const { return size_ - off_; }

  bool read_u8(uint8_t& v) {
    if (remaining() < 1) return false;
    v = data_[off_++];
    return true;
  }

  bool read_u32(uint32_t& v) {
    if (remaining() < 4) return false;
    v = static_cast<uint32_t>(data_[off_]) |
        static_cast<uint32_t>(data_[off_ + 1]) << 8 |
        static_cast<uint32_t>(data_[off_ + 2]) << 16 |
        static_cast<uint32_t>(data_[off_ + 3]) << 24;
    off_ += 4;
    return true;
  }

  bool read_u64(uint64_t& v) {
    uint32_t lo = 0;
    uint32_t hi = 0;
    if (remaining() < 8 || !read_u32(lo) || !read_u32(hi)) return false;
    v = static_cast<uint64_t>(hi) << 32 | lo;
    return true;
  }

  bool read_f32(float& v) {
    uint32_t bits = 0;
    if (!read_u32(bits)) return false;
    v = std::bit_cast<float>(bits);
    return true;
  }

  bool read_f64(double& v) {
    uint64_t bits = 0;
    if (!read_u64(bits)) return false;
    v = std::bit_cast<double>(bits);
    return true;
  }

  WireError read_varint(uint64_t& v) {
    uint64_t value = 0;
    for (std::size_t i = 0; i < 10; ++i) {
      if (remaining() < 1) return WireError::kTruncated;
      uint8_t byte = data_[off_++];
      uint64_t bits = byte & 0x7f;
      // The 10th byte may only contribute the final bit of a 64-bit
      // value; anything more overflows.
      if (i == 9 && bits > 1) return WireError::kVarintOverflow;
      value |= bits << (7 * i);
      if ((byte & 0x80) == 0) {
        v = value;
        return WireError::kNone;
      }
    }
    return WireError::kVarintOverflow;
  }

 private:
  const uint8_t* data_;
  std::size_t size_;
  std::size_t off_ = 0;
};

/// Reads a varint element count for records of `min_record_size` bytes
/// each, rejecting counts the remaining payload cannot possibly hold so
/// a corrupt count can never drive a large allocation.
WireError read_count(Reader& r, std::size_t min_record_size, std::size_t& n) {
  uint64_t raw = 0;
  if (WireError err = r.read_varint(raw); err != WireError::kNone) return err;
  if (raw > r.remaining() / min_record_size) return WireError::kTruncated;
  n = static_cast<std::size_t>(raw);
  return WireError::kNone;
}

WireError read_sparse_vector(Reader& r, ir::SparseVector& out) {
  std::size_t n = 0;
  if (WireError err = read_count(r, 8, n); err != WireError::kNone) return err;
  std::vector<ir::TermId> terms(n);
  std::vector<float> weights(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (!r.read_u32(terms[i])) return WireError::kTruncated;
    if (i > 0 && terms[i] <= terms[i - 1]) return WireError::kMalformed;
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (!r.read_f32(weights[i])) return WireError::kTruncated;
    if (weights[i] == 0.0f) return WireError::kMalformed;
  }
  out = ir::SparseVector::from_sorted_soa(std::move(terms), std::move(weights));
  return WireError::kNone;
}

// --- Per-type payload encoders/decoders ----------------------------------

void put_payload(std::vector<uint8_t>& out, const WalkQuery& m) {
  put_u64(out, m.guid);
  put_u32(out, m.initiator);
  put_u32(out, m.ttl);
  put_u8(out, m.flags);
  put_sparse_vector(out, m.query);
}

WireError read_payload(Reader& r, WalkQuery& m) {
  if (!r.read_u64(m.guid) || !r.read_u32(m.initiator) || !r.read_u32(m.ttl) ||
      !r.read_u8(m.flags)) {
    return WireError::kTruncated;
  }
  return read_sparse_vector(r, m.query);
}

void put_payload(std::vector<uint8_t>& out, const WalkResponse& m) {
  put_u64(out, m.guid);
  put_u32(out, m.responder);
  put_varint(out, m.docs.size());
  for (const DocScore& d : m.docs) {
    put_u32(out, d.doc);
    put_f64(out, d.score);
  }
}

WireError read_payload(Reader& r, WalkResponse& m) {
  if (!r.read_u64(m.guid) || !r.read_u32(m.responder)) {
    return WireError::kTruncated;
  }
  std::size_t n = 0;
  if (WireError err = read_count(r, 12, n); err != WireError::kNone) return err;
  m.docs.resize(n);
  for (DocScore& d : m.docs) {
    if (!r.read_u32(d.doc) || !r.read_f64(d.score)) return WireError::kTruncated;
  }
  return WireError::kNone;
}

void put_payload(std::vector<uint8_t>& out, const FloodForward& m) {
  put_u64(out, m.guid);
  put_u32(out, m.from);
  put_u32(out, m.depth);
  put_u32(out, m.radius);
  put_sparse_vector(out, m.query);
}

WireError read_payload(Reader& r, FloodForward& m) {
  if (!r.read_u64(m.guid) || !r.read_u32(m.from) || !r.read_u32(m.depth) ||
      !r.read_u32(m.radius)) {
    return WireError::kTruncated;
  }
  return read_sparse_vector(r, m.query);
}

void put_payload(std::vector<uint8_t>& out, const DiscoveryProbe& m) {
  put_u32(out, m.origin);
  put_u64(out, m.round);
  put_u8(out, m.want_relevant);
  put_u32(out, m.ttl);
  put_u32(out, m.max_responses);
}

WireError read_payload(Reader& r, DiscoveryProbe& m) {
  if (!r.read_u32(m.origin) || !r.read_u64(m.round) ||
      !r.read_u8(m.want_relevant) || !r.read_u32(m.ttl) ||
      !r.read_u32(m.max_responses)) {
    return WireError::kTruncated;
  }
  return WireError::kNone;
}

void put_payload(std::vector<uint8_t>& out, const HandshakeRequest& m) {
  put_u32(out, m.from);
  put_u32(out, m.to);
  put_u8(out, m.link_type);
  put_f64(out, m.rel);
  put_f64(out, m.capacity);
  put_u32(out, m.degree);
}

WireError read_payload(Reader& r, HandshakeRequest& m) {
  if (!r.read_u32(m.from) || !r.read_u32(m.to) || !r.read_u8(m.link_type) ||
      !r.read_f64(m.rel) || !r.read_f64(m.capacity) || !r.read_u32(m.degree)) {
    return WireError::kTruncated;
  }
  return WireError::kNone;
}

void put_payload(std::vector<uint8_t>& out, const HandshakeResponse& m) {
  put_u32(out, m.from);
  put_u32(out, m.to);
  put_u8(out, m.accept);
  put_u32(out, m.victim);
}

WireError read_payload(Reader& r, HandshakeResponse& m) {
  if (!r.read_u32(m.from) || !r.read_u32(m.to) || !r.read_u8(m.accept) ||
      !r.read_u32(m.victim)) {
    return WireError::kTruncated;
  }
  return WireError::kNone;
}

void put_payload(std::vector<uint8_t>& out, const HandshakeConfirm& m) {
  put_u32(out, m.from);
  put_u32(out, m.to);
  put_u8(out, m.committed);
}

WireError read_payload(Reader& r, HandshakeConfirm& m) {
  if (!r.read_u32(m.from) || !r.read_u32(m.to) || !r.read_u8(m.committed)) {
    return WireError::kTruncated;
  }
  return WireError::kNone;
}

void put_payload(std::vector<uint8_t>& out, const NodeVectorUpdate& m) {
  put_u32(out, m.owner);
  put_u64(out, m.version);
  put_sparse_vector(out, m.vector);
}

WireError read_payload(Reader& r, NodeVectorUpdate& m) {
  if (!r.read_u32(m.owner) || !r.read_u64(m.version)) {
    return WireError::kTruncated;
  }
  return read_sparse_vector(r, m.vector);
}

void put_payload(std::vector<uint8_t>& out, const ReplicaHeartbeat& m) {
  put_u32(out, m.from);
  put_u32(out, m.to);
  put_u64(out, m.tick);
}

WireError read_payload(Reader& r, ReplicaHeartbeat& m) {
  if (!r.read_u32(m.from) || !r.read_u32(m.to) || !r.read_u64(m.tick)) {
    return WireError::kTruncated;
  }
  return WireError::kNone;
}

void put_payload(std::vector<uint8_t>& out, const HostCacheExchange& m) {
  put_u32(out, m.from);
  put_u32(out, m.to);
  put_u8(out, m.cache_kind);
  put_varint(out, m.entries.size());
  for (const HostCacheRecord& e : m.entries) {
    put_u32(out, e.node);
    put_f64(out, e.capacity);
    put_u32(out, e.degree);
    put_f64(out, e.rel_score);
    put_sparse_vector(out, e.vector);
  }
}

WireError read_payload(Reader& r, HostCacheExchange& m) {
  if (!r.read_u32(m.from) || !r.read_u32(m.to) || !r.read_u8(m.cache_kind)) {
    return WireError::kTruncated;
  }
  std::size_t n = 0;
  // Minimum record: fixed fields (24 bytes) + empty vector (1 byte).
  if (WireError err = read_count(r, 25, n); err != WireError::kNone) return err;
  m.entries.resize(n);
  for (HostCacheRecord& e : m.entries) {
    if (!r.read_u32(e.node) || !r.read_f64(e.capacity) ||
        !r.read_u32(e.degree) || !r.read_f64(e.rel_score)) {
      return WireError::kTruncated;
    }
    if (WireError err = read_sparse_vector(r, e.vector);
        err != WireError::kNone) {
      return err;
    }
  }
  return WireError::kNone;
}

void put_cached_docs(std::vector<uint8_t>& out,
                     const std::vector<CachedResultDoc>& docs) {
  put_varint(out, docs.size());
  for (const CachedResultDoc& d : docs) {
    put_u32(out, d.doc);
    put_f64(out, d.score);
    put_u32(out, d.owner);
    put_u64(out, d.owner_version);
  }
}

WireError read_cached_docs(Reader& r, std::vector<CachedResultDoc>& docs) {
  std::size_t n = 0;
  if (WireError err = read_count(r, 24, n); err != WireError::kNone) return err;
  docs.resize(n);
  for (CachedResultDoc& d : docs) {
    if (!r.read_u32(d.doc) || !r.read_f64(d.score) || !r.read_u32(d.owner) ||
        !r.read_u64(d.owner_version)) {
      return WireError::kTruncated;
    }
  }
  return WireError::kNone;
}

void put_payload(std::vector<uint8_t>& out, const CacheStore& m) {
  put_u32(out, m.holder);
  put_u64(out, m.signature);
  put_cached_docs(out, m.docs);
}

WireError read_payload(Reader& r, CacheStore& m) {
  if (!r.read_u32(m.holder) || !r.read_u64(m.signature)) {
    return WireError::kTruncated;
  }
  return read_cached_docs(r, m.docs);
}

void put_payload(std::vector<uint8_t>& out, const CacheProbe& m) {
  put_u32(out, m.holder);
  put_u64(out, m.signature);
}

WireError read_payload(Reader& r, CacheProbe& m) {
  if (!r.read_u32(m.holder) || !r.read_u64(m.signature)) {
    return WireError::kTruncated;
  }
  return WireError::kNone;
}

void put_payload(std::vector<uint8_t>& out, const CacheResult& m) {
  put_u32(out, m.holder);
  put_u64(out, m.signature);
  put_cached_docs(out, m.docs);
}

WireError read_payload(Reader& r, CacheResult& m) {
  if (!r.read_u32(m.holder) || !r.read_u64(m.signature)) {
    return WireError::kTruncated;
  }
  return read_cached_docs(r, m.docs);
}

std::size_t payload_size(const WalkQuery& m) {
  return 17 + sparse_vector_size(m.query.size());
}
std::size_t payload_size(const WalkResponse& m) {
  return 12 + varint_size(m.docs.size()) + 12 * m.docs.size();
}
std::size_t payload_size(const FloodForward& m) {
  return 20 + sparse_vector_size(m.query.size());
}
std::size_t payload_size(const DiscoveryProbe&) { return 21; }
std::size_t payload_size(const HandshakeRequest&) { return 29; }
std::size_t payload_size(const HandshakeResponse&) { return 13; }
std::size_t payload_size(const HandshakeConfirm&) { return 9; }
std::size_t payload_size(const NodeVectorUpdate& m) {
  return 12 + sparse_vector_size(m.vector.size());
}
std::size_t payload_size(const ReplicaHeartbeat&) { return 16; }
std::size_t payload_size(const HostCacheExchange& m) {
  std::size_t records = 0;
  for (const HostCacheRecord& e : m.entries) {
    records += host_cache_record_size(e.vector.size());
  }
  return 9 + varint_size(m.entries.size()) + records;
}
std::size_t cached_docs_size(std::size_t docs) {
  return varint_size(docs) + 24 * docs;
}
std::size_t payload_size(const CacheStore& m) {
  return 12 + cached_docs_size(m.docs.size());
}
std::size_t payload_size(const CacheProbe&) { return 12; }
std::size_t payload_size(const CacheResult& m) {
  return 12 + cached_docs_size(m.docs.size());
}

template <typename T>
DecodeResult decode_as(Reader& r, std::size_t payload_len,
                       std::size_t header_len) {
  DecodeResult result;
  T m{};
  WireError err = read_payload(r, m);
  if (err != WireError::kNone) {
    result.error = err;
    return result;
  }
  if (r.offset() != payload_len) {
    result.error = WireError::kLengthMismatch;
    return result;
  }
  result.error = WireError::kNone;
  result.consumed = header_len + payload_len;
  result.message = std::move(m);
  return result;
}

}  // namespace

const char* wire_error_name(WireError err) {
  switch (err) {
    case WireError::kNone: return "none";
    case WireError::kTruncated: return "truncated";
    case WireError::kBadMagic: return "bad_magic";
    case WireError::kUnsupportedVersion: return "unsupported_version";
    case WireError::kUnknownType: return "unknown_type";
    case WireError::kVarintOverflow: return "varint_overflow";
    case WireError::kLengthMismatch: return "length_mismatch";
    case WireError::kMalformed: return "malformed";
  }
  return "unknown";
}

const char* message_type_name(MessageType type) {
  switch (type) {
    case MessageType::kWalkQuery: return "walk_query";
    case MessageType::kWalkResponse: return "walk_response";
    case MessageType::kFloodForward: return "flood_forward";
    case MessageType::kDiscoveryProbe: return "discovery_probe";
    case MessageType::kHandshakeRequest: return "handshake_request";
    case MessageType::kHandshakeResponse: return "handshake_response";
    case MessageType::kHandshakeConfirm: return "handshake_confirm";
    case MessageType::kNodeVectorUpdate: return "node_vector_update";
    case MessageType::kReplicaHeartbeat: return "replica_heartbeat";
    case MessageType::kHostCacheExchange: return "host_cache_exchange";
    case MessageType::kCacheStore: return "cache_store";
    case MessageType::kCacheProbe: return "cache_probe";
    case MessageType::kCacheResult: return "cache_result";
  }
  return "unknown";
}

MessageType message_type(const Message& message) {
  // The variant's alternatives are declared in tag order.
  return static_cast<MessageType>(message.index() + 1);
}

std::size_t varint_size(uint64_t value) {
  std::size_t n = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++n;
  }
  return n;
}

std::size_t sparse_vector_size(std::size_t entries) {
  return varint_size(entries) + 8 * entries;
}

std::size_t frame_size(std::size_t payload) {
  return kHeaderSize + varint_size(payload) + payload;
}

std::size_t walk_query_frame_size(std::size_t query_terms) {
  return frame_size(17 + sparse_vector_size(query_terms));
}
std::size_t walk_response_frame_size(std::size_t docs) {
  return frame_size(12 + varint_size(docs) + 12 * docs);
}
std::size_t flood_forward_frame_size(std::size_t query_terms) {
  return frame_size(20 + sparse_vector_size(query_terms));
}
std::size_t discovery_probe_frame_size() { return frame_size(21); }
std::size_t handshake_request_frame_size() { return frame_size(29); }
std::size_t handshake_response_frame_size() { return frame_size(13); }
std::size_t handshake_confirm_frame_size() { return frame_size(9); }
std::size_t handshake_legs_frame_size() {
  return handshake_request_frame_size() + handshake_response_frame_size() +
         handshake_confirm_frame_size();
}
std::size_t node_vector_update_frame_size(std::size_t vector_terms) {
  return frame_size(12 + sparse_vector_size(vector_terms));
}
std::size_t replica_heartbeat_frame_size() { return frame_size(16); }
std::size_t host_cache_record_size(std::size_t vector_terms) {
  return 24 + sparse_vector_size(vector_terms);
}
std::size_t host_cache_exchange_frame_size(std::size_t entry_count,
                                           std::size_t records_total_size) {
  return frame_size(9 + varint_size(entry_count) + records_total_size);
}
std::size_t cache_store_frame_size(std::size_t docs) {
  return frame_size(12 + cached_docs_size(docs));
}
std::size_t cache_probe_frame_size() { return frame_size(12); }
std::size_t cache_result_frame_size(std::size_t docs) {
  return frame_size(12 + cached_docs_size(docs));
}

std::size_t encoded_size(const WalkQuery& m) { return frame_size(payload_size(m)); }
std::size_t encoded_size(const WalkResponse& m) { return frame_size(payload_size(m)); }
std::size_t encoded_size(const FloodForward& m) { return frame_size(payload_size(m)); }
std::size_t encoded_size(const DiscoveryProbe& m) { return frame_size(payload_size(m)); }
std::size_t encoded_size(const HandshakeRequest& m) { return frame_size(payload_size(m)); }
std::size_t encoded_size(const HandshakeResponse& m) { return frame_size(payload_size(m)); }
std::size_t encoded_size(const HandshakeConfirm& m) { return frame_size(payload_size(m)); }
std::size_t encoded_size(const NodeVectorUpdate& m) { return frame_size(payload_size(m)); }
std::size_t encoded_size(const ReplicaHeartbeat& m) { return frame_size(payload_size(m)); }
std::size_t encoded_size(const HostCacheExchange& m) { return frame_size(payload_size(m)); }
std::size_t encoded_size(const CacheStore& m) { return frame_size(payload_size(m)); }
std::size_t encoded_size(const CacheProbe& m) { return frame_size(payload_size(m)); }
std::size_t encoded_size(const CacheResult& m) { return frame_size(payload_size(m)); }

std::size_t encoded_size(const Message& message) {
  return std::visit([](const auto& m) { return encoded_size(m); }, message);
}

void encode(const Message& message, std::vector<uint8_t>& out) {
  out.reserve(out.size() + encoded_size(message));
  out.insert(out.end(), std::begin(kMagic), std::end(kMagic));
  put_u8(out, kFormatVersion);
  put_u8(out, static_cast<uint8_t>(message_type(message)));
  std::visit(
      [&out](const auto& m) {
        put_varint(out, payload_size(m));
        put_payload(out, m);
      },
      message);
}

std::vector<uint8_t> encode(const Message& message) {
  std::vector<uint8_t> out;
  encode(message, out);
  return out;
}

DecodeResult decode(std::span<const uint8_t> bytes) {
  DecodeResult result;
  // Magic: a mismatch within the available prefix is kBadMagic; running
  // out of bytes while the prefix still matches is kTruncated.
  for (std::size_t i = 0; i < 4; ++i) {
    if (i >= bytes.size()) {
      result.error = WireError::kTruncated;
      return result;
    }
    if (bytes[i] != kMagic[i]) {
      result.error = WireError::kBadMagic;
      return result;
    }
  }
  if (bytes.size() < 5) {
    result.error = WireError::kTruncated;
    return result;
  }
  if (bytes[4] != kFormatVersion) {
    result.error = WireError::kUnsupportedVersion;
    return result;
  }
  if (bytes.size() < 6) {
    result.error = WireError::kTruncated;
    return result;
  }
  const uint8_t tag = bytes[5];
  if (tag < static_cast<uint8_t>(MessageType::kWalkQuery) ||
      tag > static_cast<uint8_t>(MessageType::kCacheResult)) {
    result.error = WireError::kUnknownType;
    return result;
  }

  Reader length_reader(bytes.data() + kHeaderSize, bytes.size() - kHeaderSize);
  uint64_t payload_len = 0;
  if (WireError err = length_reader.read_varint(payload_len);
      err != WireError::kNone) {
    result.error = err;
    return result;
  }
  const std::size_t header_len = kHeaderSize + length_reader.offset();
  if (payload_len > bytes.size() - header_len) {
    result.error = WireError::kTruncated;
    return result;
  }

  // The payload reader is bounded to exactly the declared length, so a
  // field sequence that runs long reads as truncated and one that runs
  // short fails the exact-consumption check in decode_as.
  Reader payload(bytes.data() + header_len,
                 static_cast<std::size_t>(payload_len));
  switch (static_cast<MessageType>(tag)) {
    case MessageType::kWalkQuery:
      return decode_as<WalkQuery>(payload, payload_len, header_len);
    case MessageType::kWalkResponse:
      return decode_as<WalkResponse>(payload, payload_len, header_len);
    case MessageType::kFloodForward:
      return decode_as<FloodForward>(payload, payload_len, header_len);
    case MessageType::kDiscoveryProbe:
      return decode_as<DiscoveryProbe>(payload, payload_len, header_len);
    case MessageType::kHandshakeRequest:
      return decode_as<HandshakeRequest>(payload, payload_len, header_len);
    case MessageType::kHandshakeResponse:
      return decode_as<HandshakeResponse>(payload, payload_len, header_len);
    case MessageType::kHandshakeConfirm:
      return decode_as<HandshakeConfirm>(payload, payload_len, header_len);
    case MessageType::kNodeVectorUpdate:
      return decode_as<NodeVectorUpdate>(payload, payload_len, header_len);
    case MessageType::kReplicaHeartbeat:
      return decode_as<ReplicaHeartbeat>(payload, payload_len, header_len);
    case MessageType::kHostCacheExchange:
      return decode_as<HostCacheExchange>(payload, payload_len, header_len);
    case MessageType::kCacheStore:
      return decode_as<CacheStore>(payload, payload_len, header_len);
    case MessageType::kCacheProbe:
      return decode_as<CacheProbe>(payload, payload_len, header_len);
    case MessageType::kCacheResult:
      return decode_as<CacheResult>(payload, payload_len, header_len);
  }
  result.error = WireError::kUnknownType;
  return result;
}

}  // namespace ges::p2p::wire
