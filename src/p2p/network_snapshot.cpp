#include "p2p/network_snapshot.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "util/check.hpp"

namespace ges::p2p {

namespace {

constexpr char kMagic[4] = {'G', 'E', 'S', 'N'};
constexpr uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  GES_CHECK_MSG(in.good(), "truncated network snapshot");
  return value;
}

}  // namespace

void save_network_snapshot(const Network& network, std::ostream& out) {
  out.write(kMagic, sizeof(kMagic));
  write_pod<uint32_t>(out, kVersion);

  // Corpus fingerprint.
  const auto& corpus = network.corpus();
  write_pod<uint64_t>(out, corpus.num_nodes());
  write_pod<uint64_t>(out, corpus.num_docs());
  write_pod<uint64_t>(out, corpus.dict.size());

  // Per-node capacity and liveness.
  write_pod<uint64_t>(out, network.size());
  for (NodeId n = 0; n < network.size(); ++n) {
    write_pod<double>(out, network.capacity(n));
    write_pod<uint8_t>(out, network.alive(n) ? 1 : 0);
  }

  // Links, each once (lower endpoint first).
  uint64_t link_count = 0;
  for (NodeId n = 0; n < network.size(); ++n) {
    for (const LinkType type : {LinkType::kRandom, LinkType::kSemantic}) {
      for (const NodeId peer : network.neighbors(n, type)) {
        if (peer > n) ++link_count;
      }
    }
  }
  write_pod<uint64_t>(out, link_count);
  for (NodeId n = 0; n < network.size(); ++n) {
    for (const LinkType type : {LinkType::kRandom, LinkType::kSemantic}) {
      for (const NodeId peer : network.neighbors(n, type)) {
        if (peer <= n) continue;
        write_pod<uint32_t>(out, n);
        write_pod<uint32_t>(out, peer);
        write_pod<uint8_t>(out, static_cast<uint8_t>(type));
      }
    }
  }
  GES_CHECK_MSG(out.good(), "network snapshot write failed");
}

Network load_network_snapshot(const corpus::Corpus& corpus, std::istream& in,
                              NetworkConfig config) {
  char magic[4];
  in.read(magic, sizeof(magic));
  GES_CHECK_MSG(in.good() && std::memcmp(magic, kMagic, sizeof(kMagic)) == 0,
                "not a GES network snapshot");
  const auto version = read_pod<uint32_t>(in);
  GES_CHECK_MSG(version == kVersion, "unsupported snapshot version " << version);

  GES_CHECK_MSG(read_pod<uint64_t>(in) == corpus.num_nodes(),
                "snapshot was taken over a different corpus (node count)");
  GES_CHECK_MSG(read_pod<uint64_t>(in) == corpus.num_docs(),
                "snapshot was taken over a different corpus (document count)");
  GES_CHECK_MSG(read_pod<uint64_t>(in) == corpus.dict.size(),
                "snapshot was taken over a different corpus (vocabulary)");

  const auto nodes = read_pod<uint64_t>(in);
  GES_CHECK(nodes == corpus.num_nodes());
  std::vector<Capacity> capacities(nodes);
  std::vector<bool> alive(nodes);
  for (uint64_t n = 0; n < nodes; ++n) {
    capacities[n] = read_pod<double>(in);
    alive[n] = read_pod<uint8_t>(in) != 0;
  }

  Network network(corpus, std::move(capacities), config);
  for (uint64_t n = 0; n < nodes; ++n) {
    if (!alive[n]) network.deactivate(static_cast<NodeId>(n));
  }

  const auto links = read_pod<uint64_t>(in);
  for (uint64_t i = 0; i < links; ++i) {
    const auto a = read_pod<uint32_t>(in);
    const auto b = read_pod<uint32_t>(in);
    const auto type = read_pod<uint8_t>(in);
    GES_CHECK_MSG(a < nodes && b < nodes, "link endpoint out of range");
    GES_CHECK_MSG(type <= 1, "bad link type " << int{type});
    GES_CHECK_MSG(network.connect(a, b, static_cast<LinkType>(type)),
                  "duplicate or invalid link " << a << " <-> " << b);
  }
  return network;
}

void save_network_snapshot_file(const Network& network, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  GES_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  save_network_snapshot(network, out);
}

Network load_network_snapshot_file(const corpus::Corpus& corpus,
                                   const std::string& path, NetworkConfig config) {
  std::ifstream in(path, std::ios::binary);
  GES_CHECK_MSG(in.good(), "cannot open " << path);
  return load_network_snapshot(corpus, in, config);
}

}  // namespace ges::p2p
