#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/check.hpp"
#include "util/unique_function.hpp"

namespace ges::p2p {

/// Simulated time, in abstract seconds.
using SimTime = double;

class EventQueue;

/// Non-owning, cancellable reference to a scheduled event. Returned by
/// EventQueue::schedule / schedule_after (one-shot) and schedule_every
/// (periodic: the handle refers to the whole repeating task, surviving
/// every firing until cancelled). Handles are cheap values: copy them
/// freely, drop them without affecting the timer.
///
/// Lifecycle: a handle is `live` while its event is scheduled and not
/// cancelled. cancel() flips it to cancelled — the slot stays parked in
/// the scheduler until its fire time passes (so resume() can revive it
/// with its original time and tie-breaking sequence number, which is what
/// keeps churn-rejoin heartbeats byte-identical to the old zombie-loop
/// semantics), then is reaped without running any user code. After a
/// one-shot fires, or a cancelled slot is reaped, the slot's generation
/// advances and every outstanding handle to it becomes inert (valid()
/// false, cancel()/resume() return false).
class TimerHandle {
 public:
  TimerHandle() noexcept = default;

  /// Whether the handle still refers to a parked slot (live or
  /// cancelled-but-not-yet-reaped).
  bool valid() const noexcept;

  /// Whether the event is scheduled and not cancelled.
  bool live() const noexcept;

  /// Cancel a live event: its handler will never run again (periodic
  /// tasks stop repeating) and `pending()` drops immediately. Returns
  /// true iff the state changed (false on a dead/fired/cancelled handle).
  /// Safe to call from inside any event handler, including the
  /// cancelled event's own (a periodic task may cancel itself).
  bool cancel() noexcept;

  /// Revive a cancelled event whose fire time has not passed yet: it
  /// fires at its originally scheduled time, in its original tie-break
  /// position among equal-time events. Returns false when the slot was
  /// already reaped (fire time passed) or is not cancelled.
  bool resume() noexcept;

  /// Next fire time of a valid handle, -1.0 otherwise.
  SimTime fire_time() const noexcept;

 private:
  friend class EventQueue;
  TimerHandle(EventQueue* queue, uint32_t slot, uint32_t generation) noexcept
      : queue_(queue), slot_(slot), generation_(generation) {}

  EventQueue* queue_ = nullptr;
  uint32_t slot_ = 0;
  uint32_t generation_ = 0;
};

/// Discrete-event scheduler driving the network's time-based processes:
/// topology-adaptation rounds, replica heartbeats, churn arrivals, async
/// search message hops. Events at equal timestamps run in scheduling
/// order (deterministic, tie-broken by a global sequence number);
/// handlers may schedule further events and cancel any live handle.
///
/// Internally a two-tier calendar queue rather than one binary heap:
///
///   * Near-future tier: a timer wheel of kBuckets buckets, each two
///     flat vectors of 16-byte entries. Appends that arrive in (at, seq)
///     order — the common case: equal-time storms (phase-aligned
///     heartbeats) append strictly increasing sequence numbers — extend
///     the bucket's main sorted run for free; the minority that arrive
///     out of order go to a small `stray` side-run, sorted once when the
///     cursor reaches the bucket. Dispatch merges the two runs with one
///     comparison per event, so a 10k-entry heartbeat storm is never
///     re-sorted just because a handful of churn events interleaved it.
///     The bucket width adapts to the EMA of scheduled delays, so the
///     wheel horizon tracks the workload's natural timescale.
///   * Overflow tier: events beyond the wheel horizon wait in one
///     unsorted pool — O(1) insert — and are partitioned into the wheel
///     in a single linear pass when it rebases past its horizon (the
///     bucket sorts restore exact order). The tier invariant — every
///     overflow entry fires at or after every wheel entry — means
///     dispatch never compares across tiers.
///
/// Handlers live in a slab of reusable slots (freelist, generation
/// counters for ABA-safe handles) as inline-storage UniqueFunctions:
/// captures up to util::UniqueFunction::kInlineCapacity bytes never
/// touch the allocator. The slab grows in fixed-size chunks whose
/// addresses never move, so handlers run in place — scheduling from
/// inside a handler can grow the slab without relocating the closure
/// that is currently executing. Dispatch order is exactly (at, seq)
/// regardless of tiering, so traces are byte-identical to the old
/// binary-heap scheduler.
class EventQueue {
 public:
  /// Whether stale-timestamp scheduling throws (debug builds) instead of
  /// clamping to now() (release). Tests branch on this.
  static constexpr bool kStrictScheduleChecks = GES_DEBUG_CHECKS != 0;

  EventQueue();
  ~EventQueue();
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedule `handler` at absolute time `at`. A stale `at` (< now())
  /// is clamped to now() — the event fires in this timestamp's tie-break
  /// order, never before already-queued equal-time events — and trips a
  /// GES_DCHECK in debug builds.
  TimerHandle schedule(SimTime at, util::UniqueFunction handler);

  /// Schedule `handler` `delay` seconds from now.
  TimerHandle schedule_after(SimTime delay, util::UniqueFunction handler);

  /// Schedule `handler` every `interval` seconds, first firing at
  /// now() + interval, until the handle is cancelled (or the queue stops
  /// being run). The returned handle refers to the whole periodic task.
  TimerHandle schedule_every(SimTime interval, util::UniqueFunction handler);

  SimTime now() const { return now_; }

  /// Live (scheduled, non-cancelled) events. A periodic task counts as
  /// one. Cancelled-but-unreaped slots are excluded: a churned-out
  /// node's timers stop counting the moment they are cancelled.
  size_t pending() const { return live_; }
  size_t live() const { return live_; }

  /// Cumulative cancellations (resume() does not decrement).
  size_t cancelled() const { return cancelled_total_; }

  /// Handlers actually invoked (cancelled events reaped in passing are
  /// not processed — they run no user code).
  size_t processed() const { return processed_; }

  /// Run events with timestamp <= `until`, then advance now() to `until`.
  void run_until(SimTime until);

  /// Run at most `max_events` events (default: drain everything pending,
  /// including newly scheduled ones — beware schedule_every).
  void run(size_t max_events = ~size_t{0});

 private:
  friend class TimerHandle;

  enum class SlotState : uint8_t { kFree, kLive, kCancelled };

  /// Slab slot: one scheduled event (or periodic task) and its handler.
  struct Slot {
    SimTime at = 0.0;
    SimTime interval = 0.0;  // > 0: periodic task
    uint64_t seq = 0;
    uint32_t generation = 0;
    uint32_t next_free = kNoSlot;
    SlotState state = SlotState::kFree;
    util::UniqueFunction handler;
  };

  /// Slot ids fit 24 bits (16M concurrent events) and sequence numbers
  /// 40 bits, so (at, seq, slot) packs into one 128-bit sort key:
  /// sim time is never negative, which makes the IEEE-754 bit pattern of
  /// `at` order exactly like the double itself, and equal-`at` entries
  /// always differ in seq. One branchless integer comparison replaces
  /// the branchy double-then-u64 compare — on the randomly ordered
  /// entries the bucket sorts see, that is the difference between a
  /// pipeline of mispredicts and straight-line code.
  static constexpr unsigned kSlotBits = 24;
  static constexpr uint64_t kSlotMask = (uint64_t{1} << kSlotBits) - 1;
  static constexpr uint64_t kMaxSeq = uint64_t{1} << (64 - kSlotBits);

  /// Wheel/overflow entry (16 bytes): everything dispatch ordering
  /// needs, without touching the slab.
  struct Entry {
    unsigned __int128 key;  // (bits(at) << 64) | (seq << kSlotBits) | slot

    static Entry make(SimTime at, uint64_t seq, uint32_t slot) {
      uint64_t at_bits;
      static_assert(sizeof(at_bits) == sizeof(at));
      __builtin_memcpy(&at_bits, &at, sizeof(at_bits));
      return Entry{(static_cast<unsigned __int128>(at_bits) << 64) |
                   (seq << kSlotBits) | slot};
    }
    SimTime at() const {
      const uint64_t at_bits = static_cast<uint64_t>(key >> 64);
      SimTime at;
      __builtin_memcpy(&at, &at_bits, sizeof(at));
      return at;
    }
    uint32_t slot() const {
      return static_cast<uint32_t>(static_cast<uint64_t>(key) & kSlotMask);
    }
  };
  struct EntryBefore {
    bool operator()(const Entry& a, const Entry& b) const {
      return a.key < b.key;
    }
  };

  /// One wheel bucket: two sorted runs merged at consume time.
  ///
  /// Appends that keep (at, seq) order extend `run` for free — that is
  /// the heartbeat-storm shape, thousands of equal-time entries in seq
  /// order. The few that arrive out of order go to `stray`, which gets
  /// its one deferred sort (of the unread tail) when first read. front()
  /// is then a one-comparison merge of the two run heads.
  ///
  /// Contract: pop() consumes whatever the immediately preceding front()
  /// returned (it replays the side choice front() cached).
  struct Bucket {
    std::vector<Entry> run;    // appends that kept (at, seq) order
    std::vector<Entry> stray;  // out-of-order appends, sorted lazily
    size_t run_head = 0;
    size_t stray_head = 0;
    bool stray_sorted = true;
    bool front_in_stray = false;

    bool empty() const {
      return run_head == run.size() && stray_head == stray.size();
    }
    void append(Entry e) {
      if (run.empty() || !EntryBefore{}(e, run.back())) {
        run.push_back(e);
        return;
      }
      if (stray_sorted && stray_head < stray.size() &&
          EntryBefore{}(e, stray.back())) {
        stray_sorted = false;
      }
      stray.push_back(e);
    }
    /// Next entry in (at, seq) order. Only valid when !empty().
    const Entry& front() {
      if (stray_head < stray.size()) {
        if (!stray_sorted) {
          std::sort(stray.begin() + static_cast<ptrdiff_t>(stray_head),
                    stray.end(), EntryBefore{});
          stray_sorted = true;
        }
        if (run_head == run.size() ||
            EntryBefore{}(stray[stray_head], run[run_head])) {
          front_in_stray = true;
          return stray[stray_head];
        }
      }
      front_in_stray = false;
      return run[run_head];
    }
    void pop() {
      if (front_in_stray) {
        ++stray_head;
      } else {
        ++run_head;
      }
      if (empty()) {
        run.clear();
        stray.clear();
        run_head = stray_head = 0;
        stray_sorted = true;
        front_in_stray = false;
      }
    }
  };

  static constexpr uint32_t kNoSlot = 0xffffffffu;
  /// Slab chunk granularity: slots are allocated in fixed-size chunks
  /// whose addresses never move, so a handler keeps executing from its
  /// slot even while it grows the slab.
  static constexpr size_t kSlotChunkShift = 12;
  static constexpr size_t kSlotChunkSize = size_t{1} << kSlotChunkShift;

  static constexpr size_t kBuckets = 2048;
  /// Wheel horizon as a multiple of the typical scheduled delay.
  static constexpr double kSpanFactor = 4.0;
  static constexpr double kMinBucketWidth = 1e-9;
  static constexpr double kEmaAlpha = 1.0 / 64.0;

  uint32_t alloc_slot();
  void free_slot(uint32_t slot);
  TimerHandle schedule_slot(SimTime at, SimTime interval, util::UniqueFunction handler);
  void insert_entry(SimTime at, uint64_t seq, uint32_t slot);
  void rebase_wheel(SimTime start);

  /// Min entry across both tiers (advances cursor_, rebases from the
  /// overflow tier when the wheel empties). False when nothing is queued.
  bool peek_next(Entry* out);

  /// Dispatch (or reap) the next entry if its time is <= limit.
  /// *invoked reports whether a handler ran (false: cancelled reap).
  bool dispatch_one(SimTime limit, bool* invoked);

  // TimerHandle backends.
  bool handle_valid(uint32_t slot, uint32_t generation) const noexcept;
  bool handle_live(uint32_t slot, uint32_t generation) const noexcept;
  bool cancel_slot(uint32_t slot, uint32_t generation) noexcept;
  bool resume_slot(uint32_t slot, uint32_t generation) noexcept;
  SimTime slot_fire_time(uint32_t slot, uint32_t generation) const noexcept;

  Slot& slot_ref(uint32_t slot) {
    return chunks_[slot >> kSlotChunkShift][slot & (kSlotChunkSize - 1)];
  }
  const Slot& slot_ref(uint32_t slot) const {
    return chunks_[slot >> kSlotChunkShift][slot & (kSlotChunkSize - 1)];
  }

  std::vector<std::unique_ptr<Slot[]>> chunks_;
  uint32_t slot_count_ = 0;
  uint32_t free_head_ = kNoSlot;

  std::vector<Bucket> buckets_;
  size_t cursor_ = 0;        // first possibly-non-empty bucket
  size_t wheel_count_ = 0;   // entries parked in buckets (incl. cancelled)
  SimTime wheel_start_ = 0.0;
  SimTime bucket_width_ = 1.0;
  // Derived from wheel_start_/bucket_width_ at rebase, cached so the
  // per-insert bucket-index computation is one multiply, not a divide.
  SimTime wheel_end_ = static_cast<SimTime>(kBuckets);
  SimTime inv_bucket_width_ = 1.0;
  std::vector<Entry> overflow_;  // unsorted pool, all >= wheel_end() at insert

  SimTime now_ = 0.0;
  SimTime delay_ema_ = 0.0;  // EMA of scheduled delays (adapts the wheel)
  bool have_ema_ = false;
  uint64_t next_seq_ = 0;
  size_t processed_ = 0;
  size_t live_ = 0;
  size_t cancelled_total_ = 0;
};

}  // namespace ges::p2p
