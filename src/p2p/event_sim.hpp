#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

namespace ges::p2p {

/// Simulated time, in abstract seconds.
using SimTime = double;

/// Minimal discrete-event scheduler driving the network's time-based
/// processes: topology-adaptation rounds, replica heartbeats, and churn
/// arrivals. Events at equal timestamps run in scheduling order
/// (deterministic). Handlers may schedule further events.
class EventQueue {
 public:
  /// Schedule `handler` at absolute time `at` (>= now()).
  void schedule(SimTime at, std::function<void()> handler);

  /// Schedule `handler` `delay` seconds from now.
  void schedule_after(SimTime delay, std::function<void()> handler);

  /// Schedule `handler` every `interval` seconds, first firing at
  /// now() + interval, until the queue stops being run.
  void schedule_every(SimTime interval, std::function<void()> handler);

  SimTime now() const { return now_; }
  size_t pending() const { return queue_.size(); }
  size_t processed() const { return processed_; }

  /// Run events with timestamp <= `until`, then advance now() to `until`.
  void run_until(SimTime until);

  /// Run at most `max_events` events (default: drain everything pending,
  /// including newly scheduled ones — beware schedule_every).
  void run(size_t max_events = ~size_t{0});

 private:
  struct Event {
    SimTime at;
    uint64_t seq;
    std::function<void()> handler;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  /// A schedule_every task, owned by the queue so the queued closures
  /// can reference it without owning each other (no shared_ptr cycle).
  struct RepeatingTask {
    SimTime interval;
    std::function<void()> handler;
  };

  void pop_and_run();
  void run_repeating(RepeatingTask& task);

  std::vector<std::unique_ptr<RepeatingTask>> repeating_;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  SimTime now_ = 0.0;
  uint64_t next_seq_ = 0;
  size_t processed_ = 0;
};

}  // namespace ges::p2p
