#pragma once

#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "ir/sparse_vector.hpp"
#include "p2p/types.hpp"

namespace ges::p2p {

/// One host-cache entry (paper §4.3): address (NodeId stands in for
/// IP:port), capacity, degree, optional node vector (random host cache
/// only — the semantic cache omits vectors), and the precomputed
/// relevance score ("keeping precomputed relevance scores in cache
/// avoids recomputing").
struct HostCacheEntry {
  NodeId node = kInvalidNode;
  Capacity capacity = 0.0;
  uint32_t degree = 0;
  double rel_score = 0.0;
  ir::SparseVector vector;  // empty in the semantic host cache
};

/// Size-bounded FIFO host cache (paper §4.3: "each cache has a size
/// constraint and uses FIFO as replacement strategy"). Re-inserting a
/// node updates its entry in place without refreshing its FIFO position.
class HostCache {
 public:
  explicit HostCache(size_t max_size);

  /// Insert or update. When the cache is full, the oldest entry is
  /// evicted to make room for a genuinely new node.
  void insert(HostCacheEntry entry);

  /// Remove a node's entry, if present. Returns true if removed.
  bool erase(NodeId node);

  bool contains(NodeId node) const { return index_.count(node) > 0; }
  const HostCacheEntry* find(NodeId node) const;

  size_t size() const { return order_.size(); }
  size_t max_size() const { return max_size_; }
  bool empty() const { return order_.empty(); }

  /// Entries in FIFO order (oldest first).
  std::vector<const HostCacheEntry*> entries() const;

  /// The acceptable entry with the highest rel_score, or nullptr.
  /// `acceptable` typically filters out dead nodes and current neighbors.
  const HostCacheEntry* best_by_relevance(
      const std::function<bool(const HostCacheEntry&)>& acceptable) const;

  /// The acceptable entry with the highest capacity, or nullptr.
  const HostCacheEntry* best_by_capacity(
      const std::function<bool(const HostCacheEntry&)>& acceptable) const;

 private:
  size_t max_size_;
  std::vector<HostCacheEntry> slots_;            // stable storage
  std::vector<size_t> order_;                    // FIFO of slot indices
  std::vector<size_t> free_slots_;               // recycled slot indices
  std::unordered_map<NodeId, size_t> index_;     // node -> slot
};

}  // namespace ges::p2p
