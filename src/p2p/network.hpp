#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "corpus/corpus.hpp"
#include "ir/local_index.hpp"
#include "ir/sparse_vector.hpp"
#include "p2p/host_cache.hpp"
#include "p2p/rel_cache.hpp"
#include "p2p/types.hpp"
#include "util/rng.hpp"

namespace ges::p2p {

/// Network-wide configuration.
struct NetworkConfig {
  /// Node-vector truncation size s (paper §6.2); 0 = full-size vectors.
  /// Both topology adaptation and search operate on the truncated vectors.
  size_t node_vector_size = 0;

  /// Capacity of each of the two host caches per node (paper §4.3).
  size_t host_cache_size = 50;

  /// Build per-node local indexes and node vectors on util::global_pool()
  /// during construction. Each node's content is independent, so the
  /// result is identical to the serial build; this only changes wall-clock
  /// bring-up time on multi-core hosts.
  bool parallel_build = true;
};

/// The simulated Gnutella-like network: overlay topology (typed,
/// symmetric links), per-node content (documents, local inverted index,
/// node vector), host caches, and the selective one-hop replicas of
/// random neighbors' node vectors (paper §4.4).
///
/// Topology invariants maintained by this class:
///  * links are symmetric and carry the same type on both endpoints,
///  * no self-links, no parallel links,
///  * dead (churned-out) nodes have no links and cannot gain any.
/// Degree *policies* (min/max links) belong to the adaptation layer.
class Network {
 public:
  /// Build a network over the corpus: node i of the network hosts the
  /// documents of corpus node i. The corpus must outlive the network.
  Network(const corpus::Corpus& corpus, std::vector<Capacity> capacities,
          NetworkConfig config);

  const NetworkConfig& config() const { return config_; }
  const corpus::Corpus& corpus() const { return *corpus_; }

  size_t size() const { return peers_.size(); }
  size_t alive_count() const { return alive_count_; }
  bool alive(NodeId node) const { return peer(node).alive; }
  std::vector<NodeId> alive_nodes() const;

  Capacity capacity(NodeId node) const { return peer(node).capacity; }

  /// Total degree (random + semantic links).
  uint32_t degree(NodeId node) const;
  uint32_t degree(NodeId node, LinkType type) const;

  const std::vector<NodeId>& neighbors(NodeId node, LinkType type) const;
  std::vector<NodeId> all_neighbors(NodeId node) const;

  bool has_link(NodeId a, NodeId b) const;
  std::optional<LinkType> link_type(NodeId a, NodeId b) const;

  /// Create a link of the given type. Fails (returns false) on self
  /// links, existing links, or dead endpoints. Creating a random link
  /// installs one-hop node-vector replicas on both endpoints.
  bool connect(NodeId a, NodeId b, LinkType type);

  /// Remove a link. Removing a random link flushes the corresponding
  /// replicas. Returns false if absent.
  bool disconnect(NodeId a, NodeId b);

  /// Change an existing link's type on both endpoints (paper §4.3: links
  /// are reclassified when their relevance crosses the threshold).
  /// Replicas are installed/flushed accordingly. Returns false if absent
  /// or already of that type.
  bool reclassify(NodeId a, NodeId b, LinkType type);

  // --- Content ------------------------------------------------------

  /// Node vector truncated to config().node_vector_size (what the
  /// protocols see).
  const ir::SparseVector& node_vector(NodeId node) const { return peer(node).vector; }

  /// Untruncated node vector (for instrumentation, e.g. Fig. 2d).
  const ir::SparseVector& full_node_vector(NodeId node) const {
    return peer(node).full_vector;
  }

  /// REL(X, Y) — Eq. 2 on the protocol-visible (truncated) node vectors.
  /// Memoized per unordered pair in a version-stamped cache: the sparse
  /// dot product is recomputed only after either endpoint's vector
  /// changed (add/remove document). Thread-safe for concurrent readers.
  double rel_nodes(NodeId a, NodeId b) const;

  /// Monotonic version of a node's vector; bumped on every rebuild
  /// (document addition/removal). Stamps rel_nodes cache entries.
  uint64_t node_vector_version(NodeId node) const { return peer(node).vector_version; }

  /// The pairwise-relevance cache (hit/miss diagnostics for benches).
  const RelCache& rel_cache() const { return *rel_cache_; }

  const ir::LocalIndex& index(NodeId node) const { return peer(node).index; }
  const std::vector<ir::DocId>& documents(NodeId node) const { return peer(node).docs; }

  /// Owning node of a document (documents added dynamically included).
  NodeId document_owner(ir::DocId doc) const;

  /// Document vectors by id (corpus documents plus dynamic additions).
  const ir::SparseVector& document_vector(ir::DocId doc) const;

  /// Add a brand-new document (dynamic collections, paper §4.4); returns
  /// its DocId. Rebuilds the node's vector.
  ir::DocId add_document(NodeId node, const ir::SparseVector& counts);

  /// Remove a document from its node. Rebuilds the node's vector.
  /// Returns false if the node does not hold the document.
  bool remove_document(NodeId node, ir::DocId doc);

  // --- Host caches and replicas --------------------------------------

  HostCache& random_cache(NodeId node) { return peer_mut(node).random_cache; }
  HostCache& semantic_cache(NodeId node) { return peer_mut(node).semantic_cache; }
  const HostCache& random_cache(NodeId node) const { return peer(node).random_cache; }
  const HostCache& semantic_cache(NodeId node) const { return peer(node).semantic_cache; }

  /// Replica of `neighbor`'s node vector held by `owner`, or nullptr when
  /// `neighbor` is not a random neighbor of `owner`. Replicas may be
  /// stale until the next heartbeat (paper §4.4).
  const ir::SparseVector* replica(NodeId owner, NodeId neighbor) const;

  /// A replica together with its copy stamp: a network-wide monotonic id
  /// assigned every time the replica is (re)copied (install or heartbeat
  /// refresh). An unchanged stamp for a given (owner, neighbor) therefore
  /// guarantees unchanged replica bytes — the validity key the per-query
  /// relevance memo uses to stay byte-identical under mid-query
  /// heartbeats. stamp == 0 / vector == nullptr means "no replica held".
  struct ReplicaView {
    const ir::SparseVector* vector = nullptr;
    uint64_t stamp = 0;
  };
  ReplicaView replica_view(NodeId owner, NodeId neighbor) const;

  /// The network-wide replica copy counter: bumped on every install and
  /// heartbeat refresh, i.e. on every write to any replica slot. While
  /// this value is unchanged, every held replica's bytes are unchanged —
  /// the O(1) fast path the per-query relevance memo checks before
  /// falling back to a per-slot replica_view lookup.
  uint64_t replica_stamp() const { return replica_stamp_; }

  /// The network-wide content/membership counter: bumped on every
  /// local-index change (add_document / remove_document) and on every
  /// departure (deactivate). While this
  /// value is unchanged, no node's local index changed and no node died
  /// anywhere — the O(1) validity fast path of the query-result cache
  /// (ges/result_cache.hpp): a stamp-matched entry is byte-identical to
  /// fresh evaluation. Rejoins (activate) do not bump it — a rejoining
  /// node's index is unchanged, so cached scores it owns are still exact.
  uint64_t content_stamp() const { return content_stamp_; }

  /// Heartbeat: re-copy the current node vectors of all random neighbors.
  void refresh_replicas(NodeId owner);

  /// One heartbeat message worth of refresh: re-copy `neighbor`'s current
  /// node vector. Returns false (no-op) when `owner` is dead or
  /// `neighbor` is no longer a random neighbor — delayed heartbeat events
  /// may outlive the link they were sent over.
  bool refresh_replica(NodeId owner, NodeId neighbor);

  /// Number of stale replicas held by `owner` (differs from the
  /// neighbor's current vector) — test/diagnostic helper.
  size_t stale_replica_count(NodeId owner) const;

  /// Number of replicas held by `owner` (== its random degree when the
  /// replica invariant holds).
  size_t replica_count(NodeId owner) const { return peer(owner).replicas.size(); }

  /// Number of link records at `node` (== its degree when the neighbor
  /// lists and the link map agree) — invariant-checker accessor.
  size_t link_record_count(NodeId node) const { return peer(node).link_types.size(); }

  // --- Churn ----------------------------------------------------------

  /// Node leaves: all its links are dropped (flushing replicas on both
  /// sides); host caches of *other* nodes keep their possibly-dead
  /// entries, as in Gnutella — consumers must check liveness.
  void deactivate(NodeId node);

  /// Node rejoins with empty caches and no links (bootstrap separately).
  void activate(NodeId node);

  /// Check structural invariants (symmetry, type agreement, liveness,
  /// replica consistency with random links). Throws CheckFailure on
  /// violation. O(V + E); intended for tests.
  void check_invariants() const;

 private:
  struct ReplicaSlot {
    ir::SparseVector vector;
    uint64_t stamp = 0;  // assigned from replica_stamp_ on every copy
  };

  struct Peer {
    bool alive = true;
    Capacity capacity = 1.0;
    std::vector<NodeId> random_neighbors;
    std::vector<NodeId> semantic_neighbors;
    std::unordered_map<NodeId, LinkType> link_types;
    HostCache random_cache{1};
    HostCache semantic_cache{1};
    std::unordered_map<NodeId, ReplicaSlot> replicas;
    std::vector<ir::DocId> docs;
    ir::LocalIndex index;
    ir::SparseVector vector;       // truncated to node_vector_size
    ir::SparseVector full_vector;  // untruncated
    uint64_t vector_version = 0;   // bumped by rebuild_node_vector
  };

  const Peer& peer(NodeId node) const;
  Peer& peer_mut(NodeId node);
  void rebuild_node_vector(NodeId node);
  void install_replicas(NodeId a, NodeId b);
  void flush_replicas(NodeId a, NodeId b);
  const ir::SparseVector& counts_of(ir::DocId doc) const;

  const corpus::Corpus* corpus_;
  NetworkConfig config_;
  std::vector<Peer> peers_;
  size_t alive_count_ = 0;
  uint64_t replica_stamp_ = 0;  // last copy stamp handed out (0 = none)
  uint64_t content_stamp_ = 0;  // bumped by add/remove_document, deactivate
  std::unique_ptr<RelCache> rel_cache_;  // unique_ptr keeps Network movable

  // Documents added after construction (DocIds continue the corpus range).
  struct DynamicDoc {
    ir::SparseVector counts;
    ir::SparseVector vector;
  };
  std::deque<DynamicDoc> dynamic_docs_;
  std::unordered_map<ir::DocId, NodeId> doc_owner_;  // dynamic docs only
};

/// Connect alive nodes into a uniformly random graph with the given
/// average degree (paper §5.4: "uniformly random graphs with an average
/// degree of 8"), using links of type `type`. Existing links are kept.
void bootstrap_random_graph(Network& network, double avg_degree, util::Rng& rng,
                            LinkType type = LinkType::kRandom);

/// Bootstrap a (re)joining node: connect it to up to `links` distinct
/// random alive nodes (Gnutella bootstrap, paper §4.3).
void bootstrap_join(Network& network, NodeId node, size_t links, util::Rng& rng,
                    LinkType type = LinkType::kRandom);

}  // namespace ges::p2p
