#include "baselines/random_walk_search.hpp"

#include <deque>
#include <unordered_set>

#include "util/check.hpp"

namespace ges::baselines {

using p2p::NodeId;
using p2p::SearchTrace;

namespace {

/// Shared probe bookkeeping for the baselines.
struct ProbeState {
  const p2p::Network& net;
  const ir::SparseVector& query;
  double threshold = 0.0;
  size_t budget = 0;
  size_t max_responses = 0;

  SearchTrace trace{};
  std::unordered_set<NodeId> seen{};
  size_t responses = 0;

  bool done() const {
    return trace.probes() >= budget ||
           (max_responses != 0 && responses >= max_responses);
  }

  void probe(NodeId node) {
    seen.insert(node);
    const auto probe_index = static_cast<uint32_t>(trace.probe_order.size());
    trace.probe_order.push_back(node);
    for (const auto& d : net.index(node).evaluate(query, threshold)) {
      trace.retrieved.push_back({d.doc, d.score, probe_index});
      ++responses;
    }
  }
};

}  // namespace

SearchTrace random_walk_search(const p2p::Network& network,
                               const ir::SparseVector& query, NodeId initiator,
                               const RandomWalkSearchOptions& options,
                               util::Rng& rng) {
  GES_CHECK(network.alive(initiator));
  GES_CHECK(options.walkers >= 1);
  ProbeState state{network,
                   query,
                   options.doc_rel_threshold,
                   options.probe_budget == 0 ? network.alive_count() : options.probe_budget,
                   options.max_responses};
  state.probe(initiator);

  struct Walker {
    NodeId at;
    NodeId prev = p2p::kInvalidNode;
    bool stuck = false;
  };
  std::vector<Walker> walkers(options.walkers, Walker{initiator});

  const size_t max_hops = options.ttl == 0
                              ? 40 * network.alive_count() + 1000  // safety valve
                              : options.ttl;
  size_t hops = 0;
  while (!state.done() && hops < max_hops) {
    bool any_moved = false;
    for (auto& w : walkers) {
      if (state.done() || hops >= max_hops) break;
      if (w.stuck) continue;
      std::vector<NodeId> neighbors;
      for (const NodeId n : network.all_neighbors(w.at)) {
        if (network.alive(n)) neighbors.push_back(n);
      }
      if (neighbors.empty()) {
        w.stuck = true;
        continue;
      }
      NodeId next = neighbors[rng.index(neighbors.size())];
      if (next == w.prev && neighbors.size() > 1) {
        while (next == w.prev) next = neighbors[rng.index(neighbors.size())];
      }
      w.prev = w.at;
      w.at = next;
      ++hops;
      ++state.trace.walk_steps;
      any_moved = true;
      if (state.seen.count(w.at) == 0) state.probe(w.at);
    }
    if (!any_moved) break;
  }
  return state.trace;
}

SearchTrace flooding_search(const p2p::Network& network, const ir::SparseVector& query,
                            NodeId initiator, const FloodingSearchOptions& options) {
  GES_CHECK(network.alive(initiator));
  ProbeState state{network,
                   query,
                   options.doc_rel_threshold,
                   options.probe_budget == 0 ? network.alive_count() : options.probe_budget,
                   options.max_responses};
  state.probe(initiator);

  struct Item {
    NodeId node;
    NodeId from;
    size_t depth;
  };
  std::deque<Item> frontier{{initiator, p2p::kInvalidNode, 0}};
  while (!frontier.empty() && !state.done()) {
    const Item item = frontier.front();
    frontier.pop_front();
    if (options.ttl != 0 && item.depth >= options.ttl) continue;
    for (const NodeId next : network.all_neighbors(item.node)) {
      if (next == item.from || !network.alive(next)) continue;
      ++state.trace.flood_messages;
      if (state.seen.count(next) > 0) continue;
      if (state.done()) break;
      state.probe(next);
      frontier.push_back({next, item.node, item.depth + 1});
    }
  }
  return state.trace;
}

}  // namespace ges::baselines
