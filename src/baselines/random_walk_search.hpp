#pragma once

#include "ir/sparse_vector.hpp"
#include "p2p/network.hpp"
#include "p2p/search_trace.hpp"
#include "util/rng.hpp"

namespace ges::baselines {

/// Options of the "Random" baseline (paper §5.1: random walks over a
/// uniformly random graph, after Lv et al.).
struct RandomWalkSearchOptions {
  /// Number of parallel walkers (Lv et al. recommend 16-64); walkers
  /// advance in lock-step rounds.
  size_t walkers = 32;

  /// Total hop budget across all walkers; 0 = unbounded.
  size_t ttl = 0;

  /// Stop after this many retrieved documents; 0 = unbounded.
  size_t max_responses = 0;

  /// Stop after this many distinct probed nodes; 0 = all alive nodes.
  size_t probe_budget = 0;

  /// Retrieval rule, as in GES.
  double doc_rel_threshold = 0.0;
};

/// Execute one blind random-walk search from `initiator`: at each step a
/// walker forwards the query to a uniformly random neighbor "without
/// considering any hint of how likely the next node will have answers"
/// (paper §5.1). Probes and retrievals are instrumented like GES.
p2p::SearchTrace random_walk_search(const p2p::Network& network,
                                    const ir::SparseVector& query,
                                    p2p::NodeId initiator,
                                    const RandomWalkSearchOptions& options,
                                    util::Rng& rng);

/// Options for plain Gnutella flooding (reference point; paper §2 calls
/// out its bandwidth cost).
struct FloodingSearchOptions {
  size_t ttl = 0;  // BFS depth; 0 = unbounded
  size_t max_responses = 0;
  size_t probe_budget = 0;
  double doc_rel_threshold = 0.0;
};

/// Breadth-first flooding over all links from `initiator`.
p2p::SearchTrace flooding_search(const p2p::Network& network,
                                 const ir::SparseVector& query, p2p::NodeId initiator,
                                 const FloodingSearchOptions& options);

}  // namespace ges::baselines
