#pragma once

#include <memory>
#include <vector>

#include "corpus/corpus.hpp"
#include "ir/sparse_vector.hpp"
#include "p2p/capacity.hpp"
#include "p2p/network.hpp"
#include "p2p/search_trace.hpp"
#include "util/rng.hpp"

namespace ges::baselines {

/// SETS construction parameters (paper §5.1; Bawa–Manku–Raghavan).
struct SetsParams {
  /// Number of topic segments C; 0 = auto (about one segment per 7 nodes,
  /// the paper's 256-segments-for-1880-nodes ratio).
  size_t segments = 0;

  /// Links per node inside its segment / to other segments (paper: 4 + 4).
  size_t local_links = 4;
  size_t long_links = 4;

  /// Spherical k-means iterations at the designated node.
  size_t kmeans_iterations = 12;

  /// Nodes involved in routing the query into each segment. SETS's
  /// topic-segmented overlay routes over long-distance links in
  /// O(log C) hops (Bawa et al.); every node on the path processes the
  /// query and counts toward the paper's "fraction of nodes involved in
  /// query processing". ~0 = auto: ceil(log2(segments)).
  size_t routing_hops = ~size_t{0};

  /// Centroids are truncated to this many terms after each update (keeps
  /// the designated node's computation tractable); 0 = no truncation.
  size_t centroid_terms = 1'000;

  uint64_t seed = 99;
};

/// SETS query options.
struct SetsSearchOptions {
  /// SETS computes the R most relevant segments and routes the query to
  /// them in relevance order (paper §5.1). When the probe budget is not
  /// yet exhausted after those R segments, the search continues through
  /// the *remaining* segments in arbitrary (id) order — the designated
  /// node only ranks R segments, so the tail of the recall-vs-cost curve
  /// grows without topic guidance (this is why GES overtakes SETS at
  /// high budgets in Fig. 1). 0 = rank every segment.
  size_t route_segments = 0;

  size_t max_responses = 0;
  size_t probe_budget = 0;
  double doc_rel_threshold = 0.0;
};

/// The SETS baseline: a topic-segmented overlay built by a *designated
/// node* that clusters all node vectors into C topic segments (the
/// centralized structure GES's distributed adaptation replaces). Each
/// node keeps `local_links` links inside its segment and `long_links`
/// links to other segments. A query is routed to segments in decreasing
/// centroid relevance and flooded within each (paper §5.1; §6.1 explains
/// why this wins at low probe budgets and loses past ~30 %).
class SetsSystem {
 public:
  /// Builds its own overlay over the corpus. SETS uses full-size node
  /// vectors (paper §6.2), so `net.node_vector_size` is forced to 0.
  SetsSystem(const corpus::Corpus& corpus, std::vector<p2p::Capacity> capacities,
             p2p::NetworkConfig net, SetsParams params);

  /// Run the designated node's clustering and build the overlay links.
  void build();

  p2p::Network& network() { return *network_; }
  const p2p::Network& network() const { return *network_; }

  size_t segment_count() const { return centroids_.size(); }
  const std::vector<uint32_t>& segment_assignment() const { return segment_of_; }
  const ir::SparseVector& centroid(size_t segment) const;

  /// Members of one segment.
  const std::vector<p2p::NodeId>& segment_members(size_t segment) const;

  /// Execute one query. `initiator` only anchors the trace; routing uses
  /// the designated node's global segment knowledge.
  p2p::SearchTrace search(const ir::SparseVector& query, p2p::NodeId initiator,
                          const SetsSearchOptions& options, util::Rng& rng) const;

 private:
  void run_kmeans();
  void build_links();

  const corpus::Corpus* corpus_;
  SetsParams params_;
  std::unique_ptr<p2p::Network> network_;
  util::Rng rng_;
  std::vector<uint32_t> segment_of_;
  std::vector<ir::SparseVector> centroids_;
  std::vector<std::vector<p2p::NodeId>> members_;
  bool built_ = false;
};

}  // namespace ges::baselines
