#include "baselines/sets.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <unordered_set>

#include "ir/kmeans.hpp"
#include "ir/node_vector.hpp"
#include "util/check.hpp"

namespace ges::baselines {

using p2p::LinkType;
using p2p::NodeId;
using p2p::SearchTrace;

SetsSystem::SetsSystem(const corpus::Corpus& corpus,
                       std::vector<p2p::Capacity> capacities, p2p::NetworkConfig net,
                       SetsParams params)
    : corpus_(&corpus), params_(params), rng_(util::derive_seed(params.seed, 0)) {
  net.node_vector_size = 0;  // SETS uses full-size node vectors (paper §6.2)
  network_ = std::make_unique<p2p::Network>(corpus, std::move(capacities), net);
  if (params_.segments == 0) {
    params_.segments = std::max<size_t>(2, corpus.num_nodes() / 7);
  }
  if (params_.routing_hops == ~size_t{0}) {
    params_.routing_hops = static_cast<size_t>(
        std::ceil(std::log2(static_cast<double>(params_.segments))));
  }
  GES_CHECK(params_.segments >= 1);
  GES_CHECK_MSG(params_.segments <= corpus.num_nodes(),
                "more segments than nodes (" << params_.segments << " > "
                                             << corpus.num_nodes() << ")");
}

void SetsSystem::build() {
  GES_CHECK_MSG(!built_, "SetsSystem::build() already ran");
  built_ = true;
  run_kmeans();
  build_links();
}

const ir::SparseVector& SetsSystem::centroid(size_t segment) const {
  GES_CHECK(segment < centroids_.size());
  return centroids_[segment];
}

const std::vector<NodeId>& SetsSystem::segment_members(size_t segment) const {
  GES_CHECK(segment < members_.size());
  return members_[segment];
}

void SetsSystem::run_kmeans() {
  const size_t n = network_->size();

  std::vector<const ir::SparseVector*> vectors;
  vectors.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    vectors.push_back(&network_->node_vector(static_cast<NodeId>(i)));
  }
  ir::KMeansParams kmeans;
  kmeans.clusters = params_.segments;
  kmeans.max_iterations = params_.kmeans_iterations;
  kmeans.centroid_terms = params_.centroid_terms;
  kmeans.seed = util::derive_seed(params_.seed, 1);
  auto clustering = ir::spherical_kmeans(vectors, kmeans);
  segment_of_ = std::move(clustering.assignment);
  centroids_ = std::move(clustering.centroids);

  members_.assign(params_.segments, {});
  for (size_t i = 0; i < n; ++i) {
    members_[segment_of_[i]].push_back(static_cast<NodeId>(i));
  }
}

void SetsSystem::build_links() {
  const size_t n = network_->size();
  // Local links: semantic-typed links to random same-segment peers.
  for (size_t i = 0; i < n; ++i) {
    const auto node = static_cast<NodeId>(i);
    const auto& segment = members_[segment_of_[i]];
    if (segment.size() <= 1) continue;
    size_t made = network_->degree(node, LinkType::kSemantic);
    size_t attempts = 0;
    while (made < params_.local_links && attempts < segment.size() * 8) {
      ++attempts;
      const NodeId peer = segment[rng_.index(segment.size())];
      if (network_->connect(node, peer, LinkType::kSemantic)) ++made;
    }
  }
  // Long-distance links: random-typed links to other segments.
  for (size_t i = 0; i < n; ++i) {
    const auto node = static_cast<NodeId>(i);
    size_t made = network_->degree(node, LinkType::kRandom);
    size_t attempts = 0;
    while (made < params_.long_links && attempts < n * 4) {
      ++attempts;
      const auto peer = static_cast<NodeId>(rng_.index(n));
      if (segment_of_[peer] == segment_of_[i]) continue;
      if (network_->connect(node, peer, LinkType::kRandom)) ++made;
    }
  }
}

SearchTrace SetsSystem::search(const ir::SparseVector& query, NodeId initiator,
                               const SetsSearchOptions& options, util::Rng& rng) const {
  GES_CHECK_MSG(built_, "SetsSystem::build() must run before search()");
  GES_CHECK(network_->alive(initiator));

  SearchTrace trace;
  std::unordered_set<NodeId> seen;
  size_t responses = 0;
  const size_t budget =
      options.probe_budget == 0 ? network_->alive_count() : options.probe_budget;

  const auto done = [&] {
    return trace.probes() >= budget ||
           (options.max_responses != 0 && responses >= options.max_responses);
  };
  const auto probe = [&](NodeId node) {
    seen.insert(node);
    const auto probe_index = static_cast<uint32_t>(trace.probe_order.size());
    trace.probe_order.push_back(node);
    for (const auto& d :
         network_->index(node).evaluate(query, options.doc_rel_threshold)) {
      trace.retrieved.push_back({d.doc, d.score, probe_index});
      ++responses;
    }
  };

  // The designated node ranks segments by centroid relevance and routes
  // the query to the R most relevant ones in order (paper §5.1); any
  // remaining budget is spent on the other segments in arbitrary order.
  std::vector<std::pair<double, size_t>> ranked;
  ranked.reserve(centroids_.size());
  for (size_t s = 0; s < centroids_.size(); ++s) {
    ranked.emplace_back(centroids_[s].dot(query), s);
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  const size_t routed = options.route_segments == 0
                            ? ranked.size()
                            : std::min(options.route_segments, ranked.size());
  std::vector<size_t> visit_order;
  visit_order.reserve(ranked.size());
  for (size_t r = 0; r < routed; ++r) visit_order.push_back(ranked[r].second);
  for (size_t r = routed; r < ranked.size(); ++r) visit_order.push_back(ranked[r].second);
  if (routed < ranked.size()) {
    std::sort(visit_order.begin() + static_cast<ptrdiff_t>(routed), visit_order.end());
  }

  const auto alive_nodes = network_->alive_nodes();
  for (size_t r = 0; r < visit_order.size() && !done(); ++r) {
    const size_t segment = visit_order[r];
    std::vector<NodeId> alive_members;
    for (const NodeId m : members_[segment]) {
      if (network_->alive(m) && seen.count(m) == 0) alive_members.push_back(m);
    }
    if (alive_members.empty()) continue;

    // Routing into the segment: the query is forwarded over the
    // small-world overlay for ~log2(C) hops; every forwarding node
    // processes (and evaluates) the query.
    for (size_t hop = 0; hop < params_.routing_hops && !done(); ++hop) {
      const NodeId via = alive_nodes[rng.index(alive_nodes.size())];
      ++trace.walk_steps;
      if (seen.count(via) == 0) probe(via);
    }
    if (done()) break;
    // Routing may have probed some members already.
    alive_members.erase(std::remove_if(alive_members.begin(), alive_members.end(),
                                       [&](NodeId m) { return seen.count(m) > 0; }),
                        alive_members.end());
    if (alive_members.empty()) continue;

    // Enter at a random member (reached via long-distance links), then
    // flood along local links; unreachable members are finally routed to
    // directly — the designated node knows the full membership.
    const NodeId entry = alive_members[rng.index(alive_members.size())];
    ++trace.walk_steps;  // the routing hop into the segment
    probe(entry);
    std::deque<NodeId> frontier{entry};
    while (!frontier.empty() && !done()) {
      const NodeId current = frontier.front();
      frontier.pop_front();
      for (const NodeId next : network_->neighbors(current, LinkType::kSemantic)) {
        if (!network_->alive(next)) continue;
        ++trace.flood_messages;
        if (seen.count(next) > 0) continue;
        if (done()) break;
        probe(next);
        frontier.push_back(next);
      }
    }
    for (const NodeId m : alive_members) {
      if (done()) break;
      if (seen.count(m) > 0) continue;
      ++trace.walk_steps;  // direct routing to an unreached member
      probe(m);
    }
  }
  return trace;
}

}  // namespace ges::baselines
