#pragma once

#include <unordered_map>
#include <vector>

#include "ir/sparse_vector.hpp"
#include "ir/types.hpp"

namespace ges::ir {

/// A document scored against a query.
struct ScoredDoc {
  DocId doc = kInvalidDoc;
  double score = 0.0;

  friend bool operator==(const ScoredDoc&, const ScoredDoc&) = default;
};

/// Reusable scoring scratch space: a dense per-document accumulator plus
/// the list of slots touched by the current query. Between calls every
/// accumulator entry is zero and every flag clear, so the arena never
/// needs a full clear — only the touched slots are reset. One arena can
/// serve indexes of any size (it grows to the largest seen) and any
/// number of sequential queries; each search thread uses its own.
struct ScoreArena {
  std::vector<double> acc;      // slot -> accumulated score
  std::vector<uint8_t> seen;    // slot -> touched this query?
  std::vector<uint32_t> touched;
};

/// Per-node inverted index over the node's local documents. Each visited
/// node evaluates queries against its own contents (paper §1, §4.5); this
/// index makes that evaluation proportional to the postings of the query's
/// terms rather than to the node's whole collection.
///
/// Documents occupy dense slots [0, document_count()), so query scoring
/// accumulates into a flat array (no per-call hash map); removal visits
/// only the removed document's own posting lists via a per-slot term
/// list (plus the one document swapped into the freed slot).
class LocalIndex {
 public:
  /// Index a (normalized) document vector under its global DocId.
  void add_document(DocId doc, const SparseVector& vector);

  /// Remove a previously added document. Returns false if unknown.
  /// Cost is proportional to the removed document's postings, not the
  /// index's total postings.
  bool remove_document(DocId doc);

  size_t document_count() const { return slot_doc_.size(); }
  size_t term_count() const { return postings_.size(); }

  /// All documents with REL(D, Q) >= threshold (Eq. 1), sorted by
  /// descending score (ties by ascending DocId). threshold <= 0 means
  /// "any positive score". Uses a thread-local ScoreArena.
  std::vector<ScoredDoc> evaluate(const SparseVector& query, double threshold) const;

  /// Same, accumulating through a caller-provided arena (for callers that
  /// manage their own scratch, e.g. batched evaluation loops).
  std::vector<ScoredDoc> evaluate(const SparseVector& query, double threshold,
                                  ScoreArena& arena) const;

  /// The k highest-scoring documents with positive scores.
  std::vector<ScoredDoc> top_k(const SparseVector& query, size_t k) const;

  /// Ids of all indexed documents (unordered).
  std::vector<DocId> document_ids() const;

 private:
  struct Posting {
    uint32_t slot;
    float weight;
  };

  std::vector<ScoredDoc> score_all(const SparseVector& query, ScoreArena& arena) const;

  static ScoreArena& thread_arena();

  std::unordered_map<TermId, std::vector<Posting>> postings_;
  std::unordered_map<DocId, uint32_t> doc_slot_;
  std::vector<DocId> slot_doc_;                 // slot -> document id
  std::vector<std::vector<TermId>> slot_terms_; // slot -> its posting terms
};

}  // namespace ges::ir
