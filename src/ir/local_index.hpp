#pragma once

#include <unordered_map>
#include <vector>

#include "ir/sparse_vector.hpp"
#include "ir/types.hpp"

namespace ges::ir {

/// A document scored against a query.
struct ScoredDoc {
  DocId doc = kInvalidDoc;
  double score = 0.0;

  friend bool operator==(const ScoredDoc&, const ScoredDoc&) = default;
};

/// Per-node inverted index over the node's local documents. Each visited
/// node evaluates queries against its own contents (paper §1, §4.5); this
/// index makes that evaluation proportional to the postings of the query's
/// terms rather than to the node's whole collection.
class LocalIndex {
 public:
  /// Index a (normalized) document vector under its global DocId.
  void add_document(DocId doc, const SparseVector& vector);

  /// Remove a previously added document. Returns false if unknown.
  bool remove_document(DocId doc);

  size_t document_count() const { return docs_.size(); }
  size_t term_count() const { return postings_.size(); }

  /// All documents with REL(D, Q) >= threshold (Eq. 1), sorted by
  /// descending score (ties by ascending DocId). threshold <= 0 means
  /// "any positive score".
  std::vector<ScoredDoc> evaluate(const SparseVector& query, double threshold) const;

  /// The k highest-scoring documents with positive scores.
  std::vector<ScoredDoc> top_k(const SparseVector& query, size_t k) const;

  /// Ids of all indexed documents (unordered).
  std::vector<DocId> document_ids() const;

 private:
  struct Posting {
    DocId doc;
    float weight;
  };

  std::vector<ScoredDoc> score_all(const SparseVector& query) const;

  std::unordered_map<TermId, std::vector<Posting>> postings_;
  std::unordered_map<DocId, size_t> docs_;  // doc -> term count (for removal bookkeeping)
};

}  // namespace ges::ir
