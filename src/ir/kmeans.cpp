#include "ir/kmeans.hpp"

#include "ir/relevance.hpp"
#include "util/check.hpp"

namespace ges::ir {

KMeansResult spherical_kmeans(const std::vector<const SparseVector*>& vectors,
                              const KMeansParams& params) {
  const size_t n = vectors.size();
  const size_t k = params.clusters;
  GES_CHECK(k >= 1);
  GES_CHECK_MSG(k <= n, "more clusters (" << k << ") than vectors (" << n << ")");
  for (const auto* v : vectors) GES_CHECK(v != nullptr);

  util::Rng rng(params.seed);
  KMeansResult result;

  // Seed centroids with distinct random input vectors.
  result.centroids.reserve(k);
  for (const size_t pick : rng.sample_without_replacement(n, k)) {
    result.centroids.push_back(*vectors[pick]);
  }

  result.assignment.assign(n, 0);
  // Each vector is scored against every centroid; binding it once into a
  // densified view turns the k merge joins into k linear passes with O(1)
  // term lookups (bit-identical scores — see DensifiedQuery).
  DensifiedQuery view;
  auto assign_all = [&]() {
    bool changed = false;
    for (size_t i = 0; i < n; ++i) {
      view.bind(*vectors[i]);
      size_t best = 0;
      double best_sim = -1.0;
      for (size_t c = 0; c < k; ++c) {
        const double sim = view.dot(result.centroids[c]);
        if (sim > best_sim) {
          best_sim = sim;
          best = c;
        }
      }
      if (result.assignment[i] != best) {
        result.assignment[i] = static_cast<uint32_t>(best);
        changed = true;
      }
    }
    return changed;
  };

  for (size_t iter = 0; iter < params.max_iterations; ++iter) {
    const bool changed = assign_all();
    ++result.iterations;
    if (!changed && iter > 0) break;

    std::vector<SparseVector> sums(k);
    std::vector<size_t> counts(k, 0);
    for (size_t i = 0; i < n; ++i) {
      sums[result.assignment[i]].add_scaled(*vectors[i]);
      ++counts[result.assignment[i]];
    }
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) sums[c] = *vectors[rng.index(n)];  // re-seed empty
      if (params.centroid_terms != 0) sums[c].truncate_top(params.centroid_terms);
      sums[c].normalize();
      result.centroids[c] = std::move(sums[c]);
    }
  }
  assign_all();  // final assignment against the final centroids

  double sim_sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    sim_sum += vectors[i]->dot(result.centroids[result.assignment[i]]);
  }
  result.mean_similarity = n == 0 ? 0.0 : sim_sum / static_cast<double>(n);
  return result;
}

KMeansResult spherical_kmeans(const std::vector<SparseVector>& vectors,
                              const KMeansParams& params) {
  std::vector<const SparseVector*> ptrs;
  ptrs.reserve(vectors.size());
  for (const auto& v : vectors) ptrs.push_back(&v);
  return spherical_kmeans(ptrs, params);
}

}  // namespace ges::ir
