#pragma once

#include <span>
#include <unordered_map>

#include "ir/sparse_vector.hpp"

namespace ges::ir {

/// Term-weighting schemes (paper §3). The paper uses dampened tf
/// (w_t = 1 + ln f_t) because tf-idf "requires some global information
/// (the document frequency df)"; we implement both so the trade-off can
/// be measured (bench/ablation_design_choices).
enum class TermWeighting {
  kRawTf,       // w_t = f_t
  kDampenedTf,  // w_t = 1 + ln f_t
  kTfIdf,       // w_t = (1 + ln f_t) * ln(N / df_t)
};

const char* weighting_name(TermWeighting scheme);

/// Document frequencies of a collection — the global knowledge tf-idf
/// needs (and a distributed system does not cheaply have).
class DocumentFrequencies {
 public:
  DocumentFrequencies() = default;

  /// Count document frequencies over raw count vectors.
  static DocumentFrequencies from_count_vectors(std::span<const SparseVector> docs);

  size_t num_docs() const { return num_docs_; }
  size_t df(TermId term) const;

  /// ln(N / df); 0 for terms never seen (they cannot match anyway).
  double idf(TermId term) const;

 private:
  std::unordered_map<TermId, size_t> df_;
  size_t num_docs_ = 0;
};

/// Turn a raw term-frequency vector into a normalized weighted vector
/// under the given scheme. `df` is required for (and only for) kTfIdf.
SparseVector weight_counts(const SparseVector& counts, TermWeighting scheme,
                           const DocumentFrequencies* df = nullptr);

}  // namespace ges::ir
