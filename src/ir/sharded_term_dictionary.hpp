#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "ir/term_dictionary.hpp"
#include "ir/types.hpp"

namespace ges::ir {

/// Provisional term id handed out during concurrent interning: the term
/// is identified by (shard, slot-within-shard) until freeze_into()
/// assigns global dense TermIds.
struct ProvisionalTermId {
  uint32_t shard = 0;
  uint32_t slot = 0;
};

/// Thread-safe interning table for parallel ingest. Terms are
/// hash-striped across independently locked shards; each shard stores
/// its terms once (deque-backed, stable addresses) together with the
/// earliest (doc, pos) occurrence reported by any caller.
///
/// Determinism contract: serial ingest assigns TermIds in order of first
/// occurrence, i.e. ascending (document index, position of the term's
/// first occurrence within that document). Workers interning documents
/// in any order report exactly those (doc, pos) coordinates — which are
/// a pure function of the input, not of scheduling — and intern() keeps
/// the minimum per term. freeze_into() then sorts all terms by that key
/// and appends them to a TermDictionary, reproducing the serial id
/// assignment bit-for-bit at every thread count.
class ShardedTermDictionary {
 public:
  explicit ShardedTermDictionary(size_t shards = 64);

  /// Intern `term`, recording that it occurs in document `doc` at
  /// position `pos` (any monotone within-document coordinate works, e.g.
  /// the index in the document's first-seen unique-term sequence). Keeps
  /// the smallest (doc, pos) seen so far. Thread-safe; the returned
  /// provisional id is stable for the lifetime of this object.
  ProvisionalTermId intern(std::string_view term, uint64_t doc, uint32_t pos);

  /// Number of distinct terms interned so far. Takes all shard locks;
  /// intended for tests and diagnostics, not hot paths.
  size_t size() const;

  /// Assign global dense ids: terms already present in `dict` keep their
  /// ids; new terms are appended in ascending first-occurrence (doc, pos)
  /// order (ties broken by term string, which cannot occur when callers
  /// report per-document-unique positions). Returns the remap table:
  /// remap[shard][slot] is the global TermId for a provisional id.
  /// Call once, after all intern() calls have completed.
  std::vector<std::vector<TermId>> freeze_into(TermDictionary& dict) const;

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string_view, uint32_t> slots;  // keys view terms
    std::deque<std::string> terms;
    std::vector<std::pair<uint64_t, uint32_t>> first_seen;  // (doc, pos)
  };

  std::vector<Shard> shards_;
};

}  // namespace ges::ir
