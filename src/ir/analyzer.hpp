#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "ir/sparse_vector.hpp"
#include "ir/stopwords.hpp"
#include "ir/term_dictionary.hpp"
#include "ir/tokenizer.hpp"
#include "ir/types.hpp"

namespace ges::ir {

/// Text-analysis pipeline (paper §3): tokenize -> drop stop words ->
/// Porter-stem -> intern -> term-frequency vector. Owns nothing; the term
/// dictionary is shared across the corpus so TermIds are globally
/// consistent.
class Analyzer {
 public:
  /// `dict` must outlive the analyzer. `stop` may be the empty filter;
  /// it is copied (cheap: a set of views into static storage), so
  /// temporaries are fine.
  Analyzer(TermDictionary& dict, StopWords stop = StopWords::smart(),
           bool stem = true)
      : dict_(&dict), stop_(std::move(stop)), stem_(stem) {}

  /// Raw term-frequency vector of `text` (weights are counts >= 1).
  SparseVector count_vector(std::string_view text) const;

  /// Normalized dampened-tf document vector: counts -> 1+ln(f) -> L2=1.
  SparseVector document_vector(std::string_view text) const;

  /// Query vector: same pipeline as documents (queries in the paper are
  /// short titles, so dampening is a near-no-op but applied for symmetry).
  SparseVector query_vector(std::string_view text) const;

  /// Analyze a single token (stop/stem/intern); returns kInvalidTerm when
  /// the token is filtered out.
  TermId analyze_token(std::string_view token) const;

  /// Tokenize + stop + stem WITHOUT touching the dictionary, preserving
  /// token order (duplicates included). This is the dictionary-free half
  /// of the pipeline used by parallel ingest: workers analyze text into
  /// stemmed tokens concurrently, then interning is resolved through a
  /// ShardedTermDictionary. Safe to call from multiple threads on the
  /// same Analyzer (tokenizer and stop list are immutable).
  std::vector<std::string> stemmed_tokens(std::string_view text) const;

  const TermDictionary& dictionary() const { return *dict_; }

 private:
  TermDictionary* dict_;
  StopWords stop_;
  bool stem_;
  Tokenizer tokenizer_;
};

}  // namespace ges::ir
