#pragma once

#include <cstdint>
#include <vector>

#include "ir/sparse_vector.hpp"
#include "util/rng.hpp"

namespace ges::ir {

/// Spherical k-means over sparse (normalized) vectors — the clustering
/// behind SETS's designated-node topic segmentation (paper §5.1) and the
/// local document clustering of the virtual-node extension (paper §7).
struct KMeansParams {
  size_t clusters = 2;

  /// Maximum Lloyd iterations; stops earlier on a stable assignment.
  size_t max_iterations = 12;

  /// Centroids are truncated to this many terms after each update
  /// (0 = no truncation). Keeps centroid-vector dot products cheap.
  size_t centroid_terms = 1'000;

  uint64_t seed = 1;
};

struct KMeansResult {
  /// assignment[i] = cluster of input vector i.
  std::vector<uint32_t> assignment;

  /// Normalized cluster centroids (clusters entries).
  std::vector<SparseVector> centroids;

  /// Iterations actually performed.
  size_t iterations = 0;

  /// Mean cosine of each vector to its centroid (clustering quality).
  double mean_similarity = 0.0;
};

/// Cluster `vectors` (expected normalized; empty vectors allowed — they
/// land in cluster 0 with similarity 0). clusters must be >= 1 and <=
/// vectors.size(). Deterministic in params.seed. Empty clusters are
/// re-seeded with a random input vector.
KMeansResult spherical_kmeans(const std::vector<const SparseVector*>& vectors,
                              const KMeansParams& params);

/// Convenience overload for owned vectors.
KMeansResult spherical_kmeans(const std::vector<SparseVector>& vectors,
                              const KMeansParams& params);

}  // namespace ges::ir
