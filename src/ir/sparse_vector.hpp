#pragma once

#include <cstddef>
#include <iterator>
#include <span>
#include <utility>
#include <vector>

#include "ir/types.hpp"

namespace ges::ir {

/// One (term, weight) component of a sparse vector. The interchange type
/// for building vectors and for call sites that want both fields at once;
/// storage inside SparseVector is structure-of-arrays.
struct TermWeight {
  TermId term = kInvalidTerm;
  float weight = 0.0f;

  friend bool operator==(const TermWeight&, const TermWeight&) = default;
};

/// Sparse term vector: components sorted by ascending TermId with strictly
/// unique terms and non-zero weights. This is the representation for
/// documents, queries and node vectors (paper §3–§4.2).
///
/// Storage is SoA — one contiguous TermId array plus one float array — so
/// the hot kernels (dot/overlap merges, galloping probes, posting scans)
/// stream term ids without dragging weights through the cache, and touch
/// weights only on matches. `entries()` remains as a zip view for callers
/// that want (term, weight) pairs.
class SparseVector {
 public:
  /// Zip view over the SoA arrays, yielding TermWeight values. Supports
  /// range-for and indexing; iterator dereference returns by value.
  class EntryRange {
   public:
    class iterator {
     public:
      using iterator_category = std::input_iterator_tag;
      using value_type = TermWeight;
      using difference_type = ptrdiff_t;
      using pointer = const TermWeight*;
      using reference = TermWeight;

      iterator() = default;
      iterator(const TermId* t, const float* w) : term_(t), weight_(w) {}
      TermWeight operator*() const { return {*term_, *weight_}; }
      iterator& operator++() {
        ++term_;
        ++weight_;
        return *this;
      }
      iterator operator++(int) {
        iterator copy = *this;
        ++*this;
        return copy;
      }
      friend bool operator==(const iterator&, const iterator&) = default;

     private:
      const TermId* term_ = nullptr;
      const float* weight_ = nullptr;
    };

    EntryRange(const TermId* terms, const float* weights, size_t size)
        : terms_(terms), weights_(weights), size_(size) {}

    iterator begin() const { return {terms_, weights_}; }
    iterator end() const { return {terms_ + size_, weights_ + size_}; }
    size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    TermWeight operator[](size_t i) const { return {terms_[i], weights_[i]}; }

   private:
    const TermId* terms_;
    const float* weights_;
    size_t size_;
  };

  SparseVector() = default;

  /// Build from arbitrary (term, weight) pairs: duplicates are summed,
  /// zero-weight results dropped, and the result sorted by term.
  static SparseVector from_pairs(std::vector<TermWeight> pairs);

  /// Build from term counts (term -> frequency), weights = raw counts.
  static SparseVector from_counts(const std::vector<std::pair<TermId, uint32_t>>& counts);

  /// Adopt already-canonical SoA arrays (sorted, unique, non-zero). The
  /// caller vouches for the invariants; used by the merge kernels.
  static SparseVector from_sorted_soa(std::vector<TermId> terms,
                                      std::vector<float> weights);

  /// The SoA component arrays, parallel and sorted by ascending TermId.
  std::span<const TermId> terms() const { return terms_; }
  std::span<const float> weights() const { return weights_; }

  EntryRange entries() const { return {terms_.data(), weights_.data(), terms_.size()}; }
  size_t size() const { return terms_.size(); }
  bool empty() const { return terms_.empty(); }

  /// Weight of `term`, or 0 if absent. O(log n).
  float weight(TermId term) const;

  /// Euclidean (L2) norm.
  double norm() const;

  /// Scale so that norm() == 1. No-op on empty or all-zero vectors.
  void normalize();

  /// Replace every weight w with 1 + ln(w) (dampened tf, paper §3).
  /// Requires all weights >= 1.
  void dampen();

  /// Keep only the k heaviest components (ties broken by lower TermId for
  /// determinism), then restore TermId order. k == 0 keeps everything
  /// ("full-size node vector" in the paper).
  void truncate_top(size_t k);

  /// this += other * scale.
  void add_scaled(const SparseVector& other, double scale = 1.0);

  /// Dot product with another sparse vector (relevance numerator of
  /// Eq. 1–3 when both sides are normalized). Two-pointer merge for
  /// comparable sizes, galloping probes when one side is far smaller;
  /// both accumulate the matched products in ascending-term order, so the
  /// result is bit-identical across strategies.
  double dot(const SparseVector& other) const;

  /// Cosine similarity: dot / (|a| |b|); 0 when either norm is 0.
  double cosine(const SparseVector& other) const;

  /// Number of terms present in both vectors.
  size_t overlap(const SparseVector& other) const;

  friend bool operator==(const SparseVector&, const SparseVector&) = default;

 private:
  void canonicalize_from(std::vector<TermWeight> pairs);

  std::vector<TermId> terms_;
  std::vector<float> weights_;
};

}  // namespace ges::ir
