#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "ir/types.hpp"

namespace ges::ir {

/// One (term, weight) component of a sparse vector.
struct TermWeight {
  TermId term = kInvalidTerm;
  float weight = 0.0f;

  friend bool operator==(const TermWeight&, const TermWeight&) = default;
};

/// Sparse term vector: components sorted by ascending TermId with strictly
/// unique terms and non-zero weights. This is the representation for
/// documents, queries and node vectors (paper §3–§4.2). Dot products are
/// linear merge joins; truncation keeps the heaviest components.
class SparseVector {
 public:
  SparseVector() = default;

  /// Build from arbitrary (term, weight) pairs: duplicates are summed,
  /// zero-weight results dropped, and the result sorted by term.
  static SparseVector from_pairs(std::vector<TermWeight> pairs);

  /// Build from term counts (term -> frequency), weights = raw counts.
  static SparseVector from_counts(const std::vector<std::pair<TermId, uint32_t>>& counts);

  const std::vector<TermWeight>& entries() const { return entries_; }
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Weight of `term`, or 0 if absent. O(log n).
  float weight(TermId term) const;

  /// Euclidean (L2) norm.
  double norm() const;

  /// Scale so that norm() == 1. No-op on empty or all-zero vectors.
  void normalize();

  /// Replace every weight w with 1 + ln(w) (dampened tf, paper §3).
  /// Requires all weights >= 1.
  void dampen();

  /// Keep only the k heaviest components (ties broken by lower TermId for
  /// determinism), then restore TermId order. k == 0 keeps everything
  /// ("full-size node vector" in the paper).
  void truncate_top(size_t k);

  /// this += other * scale.
  void add_scaled(const SparseVector& other, double scale = 1.0);

  /// Dot product with another sparse vector (relevance numerator of
  /// Eq. 1–3 when both sides are normalized).
  double dot(const SparseVector& other) const;

  /// Cosine similarity: dot / (|a| |b|); 0 when either norm is 0.
  double cosine(const SparseVector& other) const;

  /// Number of terms present in both vectors.
  size_t overlap(const SparseVector& other) const;

  friend bool operator==(const SparseVector&, const SparseVector&) = default;

 private:
  void canonicalize();

  std::vector<TermWeight> entries_;
};

}  // namespace ges::ir
