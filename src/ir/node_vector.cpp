#include "ir/node_vector.hpp"

namespace ges::ir {

SparseVector build_node_vector(std::span<const SparseVector> doc_count_vectors,
                               size_t size) {
  SparseVector sum;
  for (const auto& counts : doc_count_vectors) sum.add_scaled(counts);
  if (sum.empty()) return sum;
  sum.dampen();
  sum.normalize();
  return truncate_node_vector(sum, size);
}

SparseVector truncate_node_vector(const SparseVector& full, size_t size) {
  if (size == 0 || full.size() <= size) return full;
  SparseVector truncated = full;
  truncated.truncate_top(size);
  truncated.normalize();
  return truncated;
}

}  // namespace ges::ir
