#include "ir/query_expansion.hpp"

#include <algorithm>

namespace ges::ir {

SparseVector expand_query(const SparseVector& query,
                          std::span<const SparseVector> feedback,
                          const QueryExpansionParams& params) {
  if (feedback.empty() || params.added_terms == 0) return query;

  // Centroid of the feedback documents.
  SparseVector centroid;
  for (const auto& doc : feedback) {
    centroid.add_scaled(doc, 1.0 / static_cast<double>(feedback.size()));
  }

  // Candidate expansion terms: centroid terms not already in the query,
  // ranked by centroid weight.
  std::vector<TermWeight> candidates;
  candidates.reserve(centroid.size());
  for (const auto& e : centroid.entries()) {
    if (query.weight(e.term) == 0.0f) candidates.push_back(e);
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const TermWeight& a, const TermWeight& b) {
              if (a.weight != b.weight) return a.weight > b.weight;
              return a.term < b.term;
            });
  if (candidates.size() > params.added_terms) candidates.resize(params.added_terms);

  SparseVector expansion = SparseVector::from_pairs(std::move(candidates));
  expansion.normalize();

  SparseVector expanded = query;
  expanded.add_scaled(expansion, params.expansion_weight);
  expanded.normalize();
  return expanded;
}

}  // namespace ges::ir
