#include "ir/query_expansion.hpp"

#include <algorithm>

#include "ir/relevance.hpp"

namespace ges::ir {

SparseVector expand_query(const SparseVector& query,
                          std::span<const SparseVector> feedback,
                          const QueryExpansionParams& params) {
  if (feedback.empty() || params.added_terms == 0) return query;

  // Centroid of the feedback documents.
  SparseVector centroid;
  for (const auto& doc : feedback) {
    centroid.add_scaled(doc, 1.0 / static_cast<double>(feedback.size()));
  }

  // Candidate expansion terms: centroid terms not already in the query,
  // ranked by centroid weight. Query membership is an O(1) densified
  // lookup instead of a per-term binary search.
  DensifiedQuery query_view;
  query_view.bind(query);
  std::vector<TermWeight> candidates;
  candidates.reserve(centroid.size());
  const auto cterms = centroid.terms();
  const auto cweights = centroid.weights();
  for (size_t i = 0; i < cterms.size(); ++i) {
    if (!query_view.contains(cterms[i])) candidates.push_back({cterms[i], cweights[i]});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const TermWeight& a, const TermWeight& b) {
              if (a.weight != b.weight) return a.weight > b.weight;
              return a.term < b.term;
            });
  if (candidates.size() > params.added_terms) candidates.resize(params.added_terms);

  SparseVector expansion = SparseVector::from_pairs(std::move(candidates));
  expansion.normalize();

  SparseVector expanded = query;
  expanded.add_scaled(expansion, params.expansion_weight);
  expanded.normalize();
  return expanded;
}

}  // namespace ges::ir
