#pragma once

#include <span>

#include "ir/sparse_vector.hpp"

namespace ges::ir {

/// Parameters for automatic query expansion (pseudo-relevance feedback,
/// paper §6.3 / Mitra–Singhal–Buckley). The initial query retrieves
/// `feedback_docs` top documents; the `added_terms` heaviest terms of
/// their centroid (excluding terms already in the query) are added with
/// weight `expansion_weight` relative to the original query.
struct QueryExpansionParams {
  size_t feedback_docs = 10;
  size_t added_terms = 30;
  double expansion_weight = 0.5;
};

/// Expand `query` using the given feedback document vectors (normalized
/// document vectors of the initially retrieved top documents). Returns a
/// normalized expanded query vector. With no feedback documents or
/// added_terms == 0 the original query is returned unchanged.
SparseVector expand_query(const SparseVector& query,
                          std::span<const SparseVector> feedback,
                          const QueryExpansionParams& params = {});

}  // namespace ges::ir
