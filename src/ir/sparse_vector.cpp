#include "ir/sparse_vector.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.hpp"

namespace ges::ir {

SparseVector SparseVector::from_pairs(std::vector<TermWeight> pairs) {
  SparseVector v;
  v.canonicalize_from(std::move(pairs));
  return v;
}

SparseVector SparseVector::from_counts(
    const std::vector<std::pair<TermId, uint32_t>>& counts) {
  std::vector<TermWeight> pairs;
  pairs.reserve(counts.size());
  for (const auto& [term, count] : counts) {
    pairs.push_back({term, static_cast<float>(count)});
  }
  return from_pairs(std::move(pairs));
}

SparseVector SparseVector::from_sorted_soa(std::vector<TermId> terms,
                                           std::vector<float> weights) {
  GES_CHECK(terms.size() == weights.size());
  SparseVector v;
  v.terms_ = std::move(terms);
  v.weights_ = std::move(weights);
  return v;
}

void SparseVector::canonicalize_from(std::vector<TermWeight> pairs) {
  std::sort(pairs.begin(), pairs.end(),
            [](const TermWeight& a, const TermWeight& b) { return a.term < b.term; });
  terms_.clear();
  weights_.clear();
  terms_.reserve(pairs.size());
  weights_.reserve(pairs.size());
  for (size_t i = 0; i < pairs.size();) {
    TermWeight merged = pairs[i];
    size_t j = i + 1;
    while (j < pairs.size() && pairs[j].term == merged.term) {
      merged.weight += pairs[j].weight;
      ++j;
    }
    if (merged.weight != 0.0f) {
      terms_.push_back(merged.term);
      weights_.push_back(merged.weight);
    }
    i = j;
  }
}

float SparseVector::weight(TermId term) const {
  const auto it = std::lower_bound(terms_.begin(), terms_.end(), term);
  if (it == terms_.end() || *it != term) return 0.0f;
  return weights_[static_cast<size_t>(it - terms_.begin())];
}

double SparseVector::norm() const {
  double sq = 0.0;
  for (const float w : weights_) sq += static_cast<double>(w) * w;
  return std::sqrt(sq);
}

void SparseVector::normalize() {
  const double n = norm();
  if (n <= 0.0) return;
  const auto inv = static_cast<float>(1.0 / n);
  for (auto& w : weights_) w *= inv;
}

void SparseVector::dampen() {
  for (auto& w : weights_) {
    GES_CHECK_MSG(w >= 1.0f, "dampen() requires raw term frequencies >= 1");
    w = 1.0f + std::log(w);
  }
}

void SparseVector::truncate_top(size_t k) {
  if (k == 0 || terms_.size() <= k) return;
  // Select on an index permutation (the SoA arrays cannot be partitioned
  // as pairs in place); the kept set matches the AoS selection exactly —
  // (weight desc, term asc) is a total order here since terms are unique.
  std::vector<uint32_t> order(terms_.size());
  std::iota(order.begin(), order.end(), 0u);
  auto heavier = [this](uint32_t a, uint32_t b) {
    if (weights_[a] != weights_[b]) return weights_[a] > weights_[b];
    return terms_[a] < terms_[b];
  };
  std::nth_element(order.begin(), order.begin() + static_cast<ptrdiff_t>(k - 1),
                   order.end(), heavier);
  order.resize(k);
  // Restore TermId order, then gather both arrays through the permutation.
  std::sort(order.begin(), order.end());
  std::vector<TermId> terms;
  std::vector<float> weights;
  terms.reserve(k);
  weights.reserve(k);
  for (const uint32_t idx : order) {
    terms.push_back(terms_[idx]);
    weights.push_back(weights_[idx]);
  }
  terms_ = std::move(terms);
  weights_ = std::move(weights);
}

void SparseVector::add_scaled(const SparseVector& other, double scale) {
  if (scale == 0.0 || other.empty()) return;
  std::vector<TermId> terms;
  std::vector<float> weights;
  terms.reserve(terms_.size() + other.terms_.size());
  weights.reserve(terms_.size() + other.terms_.size());
  size_t i = 0;
  size_t j = 0;
  while (i < terms_.size() || j < other.terms_.size()) {
    if (j >= other.terms_.size() ||
        (i < terms_.size() && terms_[i] < other.terms_[j])) {
      terms.push_back(terms_[i]);
      weights.push_back(weights_[i]);
      ++i;
    } else if (i >= terms_.size() || other.terms_[j] < terms_[i]) {
      terms.push_back(other.terms_[j]);
      weights.push_back(static_cast<float>(other.weights_[j] * scale));
      ++j;
    } else {
      const float w =
          weights_[i] + static_cast<float>(other.weights_[j] * scale);
      if (w != 0.0f) {
        terms.push_back(terms_[i]);
        weights.push_back(w);
      }
      ++i;
      ++j;
    }
  }
  terms_ = std::move(terms);
  weights_ = std::move(weights);
}

namespace {

/// Merge-join dot product, O(|a| + |b|). Branches touch only the term
/// arrays; weights load on matches.
double dot_merge(std::span<const TermId> ta, std::span<const float> wa,
                 std::span<const TermId> tb, std::span<const float> wb) {
  double sum = 0.0;
  size_t i = 0;
  size_t j = 0;
  while (i < ta.size() && j < tb.size()) {
    if (ta[i] < tb[j]) {
      ++i;
    } else if (tb[j] < ta[i]) {
      ++j;
    } else {
      sum += static_cast<double>(wa[i]) * wb[j];
      ++i;
      ++j;
    }
  }
  return sum;
}

/// Galloping dot product for a much smaller `small` side:
/// O(|small| * log |large|). This is the hot shape of the search
/// protocol — a 3-4-term query against a ~1,800-term node vector.
double dot_gallop(std::span<const TermId> ts, std::span<const float> ws,
                  std::span<const TermId> tl, std::span<const float> wl) {
  double sum = 0.0;
  const TermId* lo = tl.data();
  const TermId* const end = tl.data() + tl.size();
  for (size_t i = 0; i < ts.size(); ++i) {
    lo = std::lower_bound(lo, end, ts[i]);
    if (lo == end) break;
    if (*lo == ts[i]) {
      sum += static_cast<double>(ws[i]) * wl[static_cast<size_t>(lo - tl.data())];
      ++lo;
    }
  }
  return sum;
}

}  // namespace

double SparseVector::dot(const SparseVector& other) const {
  // Binary-search when one side is far smaller; merge otherwise. All
  // strategies accumulate matches in ascending-term order with
  // double(float) * float products, so the result is bit-identical.
  constexpr size_t kGallopRatio = 16;
  if (size() * kGallopRatio < other.size()) {
    return dot_gallop(terms_, weights_, other.terms_, other.weights_);
  }
  if (other.size() * kGallopRatio < size()) {
    return dot_gallop(other.terms_, other.weights_, terms_, weights_);
  }
  return dot_merge(terms_, weights_, other.terms_, other.weights_);
}

double SparseVector::cosine(const SparseVector& other) const {
  const double na = norm();
  const double nb = other.norm();
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  return dot(other) / (na * nb);
}

size_t SparseVector::overlap(const SparseVector& other) const {
  size_t count = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < terms_.size() && j < other.terms_.size()) {
    if (terms_[i] < other.terms_[j]) {
      ++i;
    } else if (other.terms_[j] < terms_[i]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

}  // namespace ges::ir
