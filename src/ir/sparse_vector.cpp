#include "ir/sparse_vector.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace ges::ir {

SparseVector SparseVector::from_pairs(std::vector<TermWeight> pairs) {
  SparseVector v;
  v.entries_ = std::move(pairs);
  v.canonicalize();
  return v;
}

SparseVector SparseVector::from_counts(
    const std::vector<std::pair<TermId, uint32_t>>& counts) {
  std::vector<TermWeight> pairs;
  pairs.reserve(counts.size());
  for (const auto& [term, count] : counts) {
    pairs.push_back({term, static_cast<float>(count)});
  }
  return from_pairs(std::move(pairs));
}

void SparseVector::canonicalize() {
  std::sort(entries_.begin(), entries_.end(),
            [](const TermWeight& a, const TermWeight& b) { return a.term < b.term; });
  // Merge duplicates in place.
  size_t out = 0;
  for (size_t i = 0; i < entries_.size();) {
    TermWeight merged = entries_[i];
    size_t j = i + 1;
    while (j < entries_.size() && entries_[j].term == merged.term) {
      merged.weight += entries_[j].weight;
      ++j;
    }
    if (merged.weight != 0.0f) entries_[out++] = merged;
    i = j;
  }
  entries_.resize(out);
}

float SparseVector::weight(TermId term) const {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), term,
      [](const TermWeight& e, TermId t) { return e.term < t; });
  if (it == entries_.end() || it->term != term) return 0.0f;
  return it->weight;
}

double SparseVector::norm() const {
  double sq = 0.0;
  for (const auto& e : entries_) sq += static_cast<double>(e.weight) * e.weight;
  return std::sqrt(sq);
}

void SparseVector::normalize() {
  const double n = norm();
  if (n <= 0.0) return;
  const auto inv = static_cast<float>(1.0 / n);
  for (auto& e : entries_) e.weight *= inv;
}

void SparseVector::dampen() {
  for (auto& e : entries_) {
    GES_CHECK_MSG(e.weight >= 1.0f, "dampen() requires raw term frequencies >= 1");
    e.weight = 1.0f + std::log(e.weight);
  }
}

void SparseVector::truncate_top(size_t k) {
  if (k == 0 || entries_.size() <= k) return;
  auto heavier = [](const TermWeight& a, const TermWeight& b) {
    if (a.weight != b.weight) return a.weight > b.weight;
    return a.term < b.term;
  };
  std::nth_element(entries_.begin(), entries_.begin() + static_cast<ptrdiff_t>(k - 1),
                   entries_.end(), heavier);
  entries_.resize(k);
  std::sort(entries_.begin(), entries_.end(),
            [](const TermWeight& a, const TermWeight& b) { return a.term < b.term; });
}

void SparseVector::add_scaled(const SparseVector& other, double scale) {
  if (scale == 0.0 || other.empty()) return;
  std::vector<TermWeight> merged;
  merged.reserve(entries_.size() + other.entries_.size());
  size_t i = 0;
  size_t j = 0;
  while (i < entries_.size() || j < other.entries_.size()) {
    if (j >= other.entries_.size() ||
        (i < entries_.size() && entries_[i].term < other.entries_[j].term)) {
      merged.push_back(entries_[i++]);
    } else if (i >= entries_.size() || other.entries_[j].term < entries_[i].term) {
      merged.push_back({other.entries_[j].term,
                        static_cast<float>(other.entries_[j].weight * scale)});
      ++j;
    } else {
      const float w = entries_[i].weight +
                      static_cast<float>(other.entries_[j].weight * scale);
      if (w != 0.0f) merged.push_back({entries_[i].term, w});
      ++i;
      ++j;
    }
  }
  entries_ = std::move(merged);
}

namespace {

/// Merge-join dot product, O(|a| + |b|).
double dot_merge(const std::vector<TermWeight>& a, const std::vector<TermWeight>& b) {
  double sum = 0.0;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i].term < b[j].term) {
      ++i;
    } else if (b[j].term < a[i].term) {
      ++j;
    } else {
      sum += static_cast<double>(a[i].weight) * b[j].weight;
      ++i;
      ++j;
    }
  }
  return sum;
}

/// Galloping dot product for a much smaller `small` side:
/// O(|small| * log |large|). This is the hot shape of the search
/// protocol — a 3-4-term query against a ~1,800-term node vector.
double dot_gallop(const std::vector<TermWeight>& small,
                  const std::vector<TermWeight>& large) {
  double sum = 0.0;
  auto lo = large.begin();
  for (const auto& e : small) {
    lo = std::lower_bound(lo, large.end(), e.term,
                          [](const TermWeight& x, TermId t) { return x.term < t; });
    if (lo == large.end()) break;
    if (lo->term == e.term) {
      sum += static_cast<double>(e.weight) * lo->weight;
      ++lo;
    }
  }
  return sum;
}

}  // namespace

double SparseVector::dot(const SparseVector& other) const {
  const auto& a = entries_;
  const auto& b = other.entries_;
  // Binary-search when one side is far smaller; merge otherwise.
  constexpr size_t kGallopRatio = 16;
  if (a.size() * kGallopRatio < b.size()) return dot_gallop(a, b);
  if (b.size() * kGallopRatio < a.size()) return dot_gallop(b, a);
  return dot_merge(a, b);
}

double SparseVector::cosine(const SparseVector& other) const {
  const double na = norm();
  const double nb = other.norm();
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  return dot(other) / (na * nb);
}

size_t SparseVector::overlap(const SparseVector& other) const {
  size_t count = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < entries_.size() && j < other.entries_.size()) {
    if (entries_[i].term < other.entries_[j].term) {
      ++i;
    } else if (other.entries_[j].term < entries_[i].term) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

}  // namespace ges::ir
