#include "ir/sharded_term_dictionary.hpp"

#include <algorithm>
#include <functional>

#include "util/check.hpp"

namespace ges::ir {

ShardedTermDictionary::ShardedTermDictionary(size_t shards)
    : shards_(shards == 0 ? 1 : shards) {}

ProvisionalTermId ShardedTermDictionary::intern(std::string_view term, uint64_t doc,
                                                uint32_t pos) {
  const size_t s = std::hash<std::string_view>{}(term) % shards_.size();
  Shard& shard = shards_[s];
  std::lock_guard lock(shard.mu);
  const auto it = shard.slots.find(term);
  if (it != shard.slots.end()) {
    auto& seen = shard.first_seen[it->second];
    if (std::make_pair(doc, pos) < std::make_pair(seen.first, seen.second)) {
      seen = {doc, pos};
    }
    return {static_cast<uint32_t>(s), it->second};
  }
  const auto slot = static_cast<uint32_t>(shard.terms.size());
  shard.terms.emplace_back(term);
  shard.slots.emplace(std::string_view(shard.terms.back()), slot);
  shard.first_seen.emplace_back(doc, pos);
  return {static_cast<uint32_t>(s), slot};
}

size_t ShardedTermDictionary::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard lock(shard.mu);
    total += shard.terms.size();
  }
  return total;
}

std::vector<std::vector<TermId>> ShardedTermDictionary::freeze_into(
    TermDictionary& dict) const {
  std::vector<std::vector<TermId>> remap(shards_.size());

  // Terms the base dictionary already knows keep their ids; the rest are
  // ranked by earliest occurrence.
  struct Pending {
    uint64_t doc;
    uint32_t pos;
    uint32_t shard;
    uint32_t slot;
  };
  std::vector<Pending> pending;
  for (size_t s = 0; s < shards_.size(); ++s) {
    const Shard& shard = shards_[s];
    std::lock_guard lock(shard.mu);
    remap[s].assign(shard.terms.size(), kInvalidTerm);
    for (uint32_t slot = 0; slot < shard.terms.size(); ++slot) {
      const TermId existing = dict.lookup(shard.terms[slot]);
      if (existing != kInvalidTerm) {
        remap[s][slot] = existing;
      } else {
        pending.push_back({shard.first_seen[slot].first, shard.first_seen[slot].second,
                           static_cast<uint32_t>(s), slot});
      }
    }
  }

  std::sort(pending.begin(), pending.end(), [this](const Pending& a, const Pending& b) {
    if (a.doc != b.doc) return a.doc < b.doc;
    if (a.pos != b.pos) return a.pos < b.pos;
    return shards_[a.shard].terms[a.slot] < shards_[b.shard].terms[b.slot];
  });
  for (const Pending& p : pending) {
    remap[p.shard][p.slot] = dict.intern(shards_[p.shard].terms[p.slot]);
  }
  return remap;
}

}  // namespace ges::ir
