#include "ir/weighting.hpp"

#include <cmath>

#include "util/check.hpp"

namespace ges::ir {

const char* weighting_name(TermWeighting scheme) {
  switch (scheme) {
    case TermWeighting::kRawTf: return "raw-tf";
    case TermWeighting::kDampenedTf: return "dampened-tf";
    case TermWeighting::kTfIdf: return "tf-idf";
  }
  return "?";
}

DocumentFrequencies DocumentFrequencies::from_count_vectors(
    std::span<const SparseVector> docs) {
  DocumentFrequencies out;
  out.num_docs_ = docs.size();
  for (const auto& doc : docs) {
    for (const TermId term : doc.terms()) ++out.df_[term];
  }
  return out;
}

size_t DocumentFrequencies::df(TermId term) const {
  const auto it = df_.find(term);
  return it == df_.end() ? 0 : it->second;
}

double DocumentFrequencies::idf(TermId term) const {
  const size_t d = df(term);
  if (d == 0 || num_docs_ == 0) return 0.0;
  return std::log(static_cast<double>(num_docs_) / static_cast<double>(d));
}

SparseVector weight_counts(const SparseVector& counts, TermWeighting scheme,
                           const DocumentFrequencies* df) {
  GES_CHECK_MSG(scheme != TermWeighting::kTfIdf || df != nullptr,
                "tf-idf weighting needs document frequencies");
  std::vector<TermWeight> weighted;
  weighted.reserve(counts.size());
  const auto cterms = counts.terms();
  const auto cweights = counts.weights();
  for (size_t i = 0; i < cterms.size(); ++i) {
    GES_CHECK_MSG(cweights[i] >= 1.0f, "weight_counts expects raw frequencies >= 1");
    double w = 0.0;
    switch (scheme) {
      case TermWeighting::kRawTf:
        w = cweights[i];
        break;
      case TermWeighting::kDampenedTf:
        w = 1.0 + std::log(cweights[i]);
        break;
      case TermWeighting::kTfIdf:
        w = (1.0 + std::log(cweights[i])) * df->idf(cterms[i]);
        break;
    }
    if (w > 0.0) weighted.push_back({cterms[i], static_cast<float>(w)});
  }
  SparseVector out = SparseVector::from_pairs(std::move(weighted));
  out.normalize();
  return out;
}

}  // namespace ges::ir
