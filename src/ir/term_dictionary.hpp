#pragma once

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "ir/types.hpp"

namespace ges::ir {

/// Bidirectional term <-> TermId interning table. Ids are dense and
/// allocated in first-seen order, so they double as indices into
/// per-term arrays (document frequencies, etc.). Not thread-safe for
/// concurrent interning; concurrent lookup of existing ids is safe once
/// interning has finished.
class TermDictionary {
 public:
  /// Intern `term`, returning its id (allocating a new one if unseen).
  TermId intern(std::string_view term);

  /// Id of `term` or kInvalidTerm if it was never interned.
  TermId lookup(std::string_view term) const;

  /// The term string for an id previously returned by intern().
  const std::string& term(TermId id) const;

  size_t size() const { return terms_.size(); }
  bool empty() const { return terms_.empty(); }

 private:
  std::unordered_map<std::string, TermId> ids_;
  std::vector<std::string> terms_;
};

}  // namespace ges::ir
