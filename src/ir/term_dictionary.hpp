#pragma once

#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

#include "ir/types.hpp"

namespace ges::ir {

/// Bidirectional term <-> TermId interning table. Ids are dense and
/// allocated in first-seen order, so they double as indices into
/// per-term arrays (document frequencies, etc.). Each term string is
/// stored exactly once, in a deque-backed arena whose element addresses
/// are stable; the id map keys are views into that storage.
///
/// Interning is single-threaded; concurrent lookup of existing ids is
/// safe once interning has finished. For concurrent ingest, analyze
/// documents against a ShardedTermDictionary and remap its provisional
/// ids onto this class via freeze_into() — the result is bit-identical
/// to serial interning (see sharded_term_dictionary.hpp).
class TermDictionary {
 public:
  TermDictionary() = default;
  TermDictionary(TermDictionary&&) = default;
  TermDictionary& operator=(TermDictionary&&) = default;
  // Copies rebuild the id map so its keys view the copied storage.
  TermDictionary(const TermDictionary& other);
  TermDictionary& operator=(const TermDictionary& other);

  /// Intern `term`, returning its id (allocating a new one if unseen).
  TermId intern(std::string_view term);

  /// Id of `term` or kInvalidTerm if it was never interned.
  TermId lookup(std::string_view term) const;

  /// The term string for an id previously returned by intern().
  const std::string& term(TermId id) const;

  size_t size() const { return terms_.size(); }
  bool empty() const { return terms_.empty(); }

 private:
  std::unordered_map<std::string_view, TermId> ids_;  // keys view terms_
  std::deque<std::string> terms_;                     // stable addresses
};

}  // namespace ges::ir
