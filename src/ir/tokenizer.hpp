#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ges::ir {

/// Splits text into lower-cased alphabetic tokens. Any non-alphabetic
/// character is a separator, so "restarted—quickly" yields {"restarted",
/// "quickly"} and "don't" yields {"don"} (the 1-letter "t" falls below
/// min_length). This matches classic VSM preprocessing for AP newswire.
class Tokenizer {
 public:
  explicit Tokenizer(size_t min_length = 2, size_t max_length = 64)
      : min_length_(min_length), max_length_(max_length) {}

  /// Tokenize into a fresh vector.
  std::vector<std::string> tokenize(std::string_view text) const;

  /// Tokenize appending to `out` (avoids reallocation in hot loops).
  void tokenize_into(std::string_view text, std::vector<std::string>& out) const;

  size_t min_length() const { return min_length_; }
  size_t max_length() const { return max_length_; }

 private:
  size_t min_length_;
  size_t max_length_;
};

}  // namespace ges::ir
