#pragma once

#include <cstdint>

namespace ges::ir {

/// Interned term identifier (index into the TermDictionary).
using TermId = uint32_t;

/// Document identifier, unique across the whole corpus.
using DocId = uint32_t;

inline constexpr TermId kInvalidTerm = ~TermId{0};
inline constexpr DocId kInvalidDoc = ~DocId{0};

}  // namespace ges::ir
