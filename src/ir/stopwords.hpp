#pragma once

#include <string_view>
#include <unordered_set>

namespace ges::ir {

/// Stop-word filter seeded with the SMART system's English stop list
/// (Buckley, Cornell TR85-686), the list the paper uses. Entries are stored
/// in tokenizer-normal form (lower-case, alphabetic only), so contraction
/// fragments like "don" and "ll" are included explicitly.
class StopWords {
 public:
  /// The default SMART-derived list.
  static const StopWords& smart();

  /// An empty filter (keeps everything) — useful in tests.
  StopWords() = default;

  explicit StopWords(std::unordered_set<std::string_view> words)
      : words_(std::move(words)) {}

  bool contains(std::string_view word) const { return words_.count(word) > 0; }
  size_t size() const { return words_.size(); }

 private:
  // Views into string literals with static storage duration.
  std::unordered_set<std::string_view> words_;
};

}  // namespace ges::ir
