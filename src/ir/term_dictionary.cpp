#include "ir/term_dictionary.hpp"

#include "util/check.hpp"

namespace ges::ir {

TermId TermDictionary::intern(std::string_view term) {
  const auto it = ids_.find(std::string(term));
  if (it != ids_.end()) return it->second;
  const auto id = static_cast<TermId>(terms_.size());
  GES_CHECK_MSG(id != kInvalidTerm, "term dictionary overflow");
  terms_.emplace_back(term);
  ids_.emplace(terms_.back(), id);
  return id;
}

TermId TermDictionary::lookup(std::string_view term) const {
  const auto it = ids_.find(std::string(term));
  return it == ids_.end() ? kInvalidTerm : it->second;
}

const std::string& TermDictionary::term(TermId id) const {
  GES_CHECK(id < terms_.size());
  return terms_[id];
}

}  // namespace ges::ir
