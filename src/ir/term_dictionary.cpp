#include "ir/term_dictionary.hpp"

#include "util/check.hpp"

namespace ges::ir {

TermDictionary::TermDictionary(const TermDictionary& other) : terms_(other.terms_) {
  ids_.reserve(terms_.size());
  for (size_t i = 0; i < terms_.size(); ++i) {
    ids_.emplace(std::string_view(terms_[i]), static_cast<TermId>(i));
  }
}

TermDictionary& TermDictionary::operator=(const TermDictionary& other) {
  if (this != &other) *this = TermDictionary(other);
  return *this;
}

TermId TermDictionary::intern(std::string_view term) {
  const auto it = ids_.find(term);
  if (it != ids_.end()) return it->second;
  const auto id = static_cast<TermId>(terms_.size());
  GES_CHECK_MSG(id != kInvalidTerm, "term dictionary overflow");
  terms_.emplace_back(term);
  ids_.emplace(std::string_view(terms_.back()), id);
  return id;
}

TermId TermDictionary::lookup(std::string_view term) const {
  const auto it = ids_.find(term);
  return it == ids_.end() ? kInvalidTerm : it->second;
}

const std::string& TermDictionary::term(TermId id) const {
  GES_CHECK(id < terms_.size());
  return terms_[id];
}

}  // namespace ges::ir
