#include "ir/analyzer.hpp"

#include <unordered_map>

#include "ir/porter_stemmer.hpp"

namespace ges::ir {

TermId Analyzer::analyze_token(std::string_view token) const {
  if (stop_.contains(token)) return kInvalidTerm;
  if (!stem_) return dict_->intern(token);
  return dict_->intern(porter_stem(token));
}

std::vector<std::string> Analyzer::stemmed_tokens(std::string_view text) const {
  std::vector<std::string> tokens;
  tokenizer_.tokenize_into(text, tokens);
  std::vector<std::string> out;
  out.reserve(tokens.size());
  for (auto& token : tokens) {
    if (stop_.contains(token)) continue;
    out.push_back(stem_ ? porter_stem(token) : std::move(token));
  }
  return out;
}

SparseVector Analyzer::count_vector(std::string_view text) const {
  std::vector<std::string> tokens;
  tokenizer_.tokenize_into(text, tokens);
  std::unordered_map<TermId, uint32_t> counts;
  counts.reserve(tokens.size());
  for (const auto& token : tokens) {
    const TermId id = analyze_token(token);
    if (id != kInvalidTerm) ++counts[id];
  }
  std::vector<std::pair<TermId, uint32_t>> pairs(counts.begin(), counts.end());
  return SparseVector::from_counts(pairs);
}

SparseVector Analyzer::document_vector(std::string_view text) const {
  SparseVector v = count_vector(text);
  v.dampen();
  v.normalize();
  return v;
}

SparseVector Analyzer::query_vector(std::string_view text) const {
  return document_vector(text);
}

}  // namespace ges::ir
