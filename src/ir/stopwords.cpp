#include "ir/stopwords.hpp"

namespace ges::ir {

namespace {

// The SMART English stop list (Buckley, Cornell TR85-686), normalized the
// way our tokenizer normalizes tokens: lower-case alphabetic runs only.
// Contractions are therefore represented by their fragments ("couldn",
// "ve", ...). Single letters are omitted — the tokenizer's min length
// already removes them.
constexpr std::string_view kSmartWords[] = {
    "able", "about", "above", "according", "accordingly", "across", "actually",
    "after", "afterwards", "again", "against", "ain", "all", "allow", "allows",
    "almost", "alone", "along", "already", "also", "although", "always", "am",
    "among", "amongst", "an", "and", "another", "any", "anybody", "anyhow",
    "anyone", "anything", "anyway", "anyways", "anywhere", "apart", "appear",
    "appreciate", "appropriate", "are", "aren", "around", "as", "aside", "ask",
    "asking", "associated", "at", "available", "away", "awfully", "be",
    "became", "because", "become", "becomes", "becoming", "been", "before",
    "beforehand", "behind", "being", "believe", "below", "beside", "besides",
    "best", "better", "between", "beyond", "both", "brief", "but", "by",
    "came", "can", "cannot", "cant", "cause", "causes", "certain", "certainly",
    "changes", "clearly", "cmon", "co", "com", "come", "comes", "concerning",
    "consequently", "consider", "considering", "contain", "containing",
    "contains", "corresponding", "could", "couldn", "course", "currently",
    "definitely", "described", "despite", "did", "didn", "different", "do",
    "does", "doesn", "doing", "don", "done", "down", "downwards", "during",
    "each", "edu", "eg", "eight", "either", "else", "elsewhere", "enough",
    "entirely", "especially", "et", "etc", "even", "ever", "every",
    "everybody", "everyone", "everything", "everywhere", "ex", "exactly",
    "example", "except", "far", "few", "fifth", "first", "five", "followed",
    "following", "follows", "for", "former", "formerly", "forth", "four",
    "from", "further", "furthermore", "get", "gets", "getting", "given",
    "gives", "go", "goes", "going", "gone", "got", "gotten", "greetings",
    "had", "hadn", "happens", "hardly", "has", "hasn", "have", "haven",
    "having", "he", "hello", "help", "hence", "her", "here", "hereafter",
    "hereby", "herein", "hereupon", "hers", "herself", "hi", "him", "himself",
    "his", "hither", "hopefully", "how", "howbeit", "however", "ie", "if",
    "ignored", "immediate", "in", "inasmuch", "inc", "indeed", "indicate",
    "indicated", "indicates", "inner", "insofar", "instead", "into", "inward",
    "is", "isn", "it", "its", "itself", "just", "keep", "keeps", "kept",
    "know", "known", "knows", "last", "lately", "later", "latter", "latterly",
    "least", "less", "lest", "let", "like", "liked", "likely", "little",
    "ll", "look", "looking", "looks", "ltd", "mainly", "many", "may", "maybe",
    "me", "mean", "meanwhile", "merely", "might", "more", "moreover", "most",
    "mostly", "much", "must", "my", "myself", "name", "namely", "nd", "near",
    "nearly", "necessary", "need", "needs", "neither", "never",
    "nevertheless", "new", "next", "nine", "no", "nobody", "non", "none",
    "noone", "nor", "normally", "not", "nothing", "novel", "now", "nowhere",
    "obviously", "of", "off", "often", "oh", "ok", "okay", "old", "on",
    "once", "one", "ones", "only", "onto", "or", "other", "others",
    "otherwise", "ought", "our", "ours", "ourselves", "out", "outside",
    "over", "overall", "own", "particular", "particularly", "per", "perhaps",
    "placed", "please", "plus", "possible", "presumably", "probably",
    "provides", "que", "quite", "qv", "rather", "rd", "re", "really",
    "reasonably", "regarding", "regardless", "regards", "relatively",
    "respectively", "right", "said", "same", "saw", "say", "saying", "says",
    "second", "secondly", "see", "seeing", "seem", "seemed", "seeming",
    "seems", "seen", "self", "selves", "sensible", "sent", "serious",
    "seriously", "seven", "several", "shall", "she", "should", "shouldn",
    "since", "six", "so", "some", "somebody", "somehow", "someone",
    "something", "sometime", "sometimes", "somewhat", "somewhere", "soon",
    "sorry", "specified", "specify", "specifying", "still", "sub", "such",
    "sup", "sure", "take", "taken", "tell", "tends", "th", "than", "thank",
    "thanks", "thanx", "that", "thats", "the", "their", "theirs", "them",
    "themselves", "then", "thence", "there", "thereafter", "thereby",
    "therefore", "therein", "theres", "thereupon", "these", "they", "think",
    "third", "this", "thorough", "thoroughly", "those", "though", "three",
    "through", "throughout", "thru", "thus", "to", "together", "too", "took",
    "toward", "towards", "tried", "tries", "truly", "try", "trying", "twice",
    "two", "un", "under", "unfortunately", "unless", "unlikely", "until",
    "unto", "up", "upon", "us", "use", "used", "useful", "uses", "using",
    "usually", "uucp", "value", "various", "ve", "very", "via", "viz", "vs",
    "want", "wants", "was", "wasn", "way", "we", "welcome", "well", "went",
    "were", "weren", "what", "whatever", "when", "whence", "whenever",
    "where", "whereafter", "whereas", "whereby", "wherein", "whereupon",
    "wherever", "whether", "which", "while", "whither", "who", "whoever",
    "whole", "whom", "whose", "why", "will", "willing", "wish", "with",
    "within", "without", "won", "wonder", "would", "wouldn", "yes", "yet",
    "you", "your", "yours", "yourself", "yourselves", "zero",
};

}  // namespace

const StopWords& StopWords::smart() {
  static const StopWords instance{[] {
    std::unordered_set<std::string_view> words;
    words.reserve(std::size(kSmartWords) * 2);
    for (const auto w : kSmartWords) words.insert(w);
    return words;
  }()};
  return instance;
}

}  // namespace ges::ir
