#include "ir/local_index.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace ges::ir {

void LocalIndex::add_document(DocId doc, const SparseVector& vector) {
  GES_CHECK_MSG(docs_.count(doc) == 0, "document " << doc << " already indexed");
  for (const auto& e : vector.entries()) {
    postings_[e.term].push_back({doc, e.weight});
  }
  docs_.emplace(doc, vector.size());
}

bool LocalIndex::remove_document(DocId doc) {
  const auto it = docs_.find(doc);
  if (it == docs_.end()) return false;
  for (auto pit = postings_.begin(); pit != postings_.end();) {
    auto& list = pit->second;
    list.erase(std::remove_if(list.begin(), list.end(),
                              [doc](const Posting& p) { return p.doc == doc; }),
               list.end());
    if (list.empty()) {
      pit = postings_.erase(pit);
    } else {
      ++pit;
    }
  }
  docs_.erase(it);
  return true;
}

std::vector<ScoredDoc> LocalIndex::score_all(const SparseVector& query) const {
  std::unordered_map<DocId, double> scores;
  for (const auto& e : query.entries()) {
    const auto pit = postings_.find(e.term);
    if (pit == postings_.end()) continue;
    for (const auto& p : pit->second) {
      scores[p.doc] += static_cast<double>(e.weight) * p.weight;
    }
  }
  std::vector<ScoredDoc> out;
  out.reserve(scores.size());
  for (const auto& [doc, score] : scores) out.push_back({doc, score});
  std::sort(out.begin(), out.end(), [](const ScoredDoc& a, const ScoredDoc& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.doc < b.doc;
  });
  return out;
}

std::vector<ScoredDoc> LocalIndex::evaluate(const SparseVector& query,
                                            double threshold) const {
  std::vector<ScoredDoc> scored = score_all(query);
  if (threshold <= 0.0) return scored;  // positive scores only, by construction
  const auto cut = std::find_if(scored.begin(), scored.end(), [threshold](const ScoredDoc& d) {
    return d.score < threshold;
  });
  scored.erase(cut, scored.end());
  return scored;
}

std::vector<ScoredDoc> LocalIndex::top_k(const SparseVector& query, size_t k) const {
  std::vector<ScoredDoc> scored = score_all(query);
  if (scored.size() > k) scored.resize(k);
  return scored;
}

std::vector<DocId> LocalIndex::document_ids() const {
  std::vector<DocId> ids;
  ids.reserve(docs_.size());
  for (const auto& [doc, terms] : docs_) ids.push_back(doc);
  return ids;
}

}  // namespace ges::ir
