#include "ir/local_index.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace ges::ir {

void LocalIndex::add_document(DocId doc, const SparseVector& vector) {
  GES_CHECK_MSG(doc_slot_.count(doc) == 0, "document " << doc << " already indexed");
  const auto slot = static_cast<uint32_t>(slot_doc_.size());
  const auto vterms = vector.terms();
  const auto vweights = vector.weights();
  std::vector<TermId> terms(vterms.begin(), vterms.end());
  for (size_t i = 0; i < vterms.size(); ++i) {
    postings_[vterms[i]].push_back({slot, vweights[i]});
  }
  doc_slot_.emplace(doc, slot);
  slot_doc_.push_back(doc);
  slot_terms_.push_back(std::move(terms));
}

bool LocalIndex::remove_document(DocId doc) {
  const auto it = doc_slot_.find(doc);
  if (it == doc_slot_.end()) return false;
  const uint32_t slot = it->second;

  // Strip the document's own postings (its term list names exactly the
  // posting lists that can contain it).
  for (const TermId term : slot_terms_[slot]) {
    const auto pit = postings_.find(term);
    auto& list = pit->second;
    list.erase(std::find_if(list.begin(), list.end(),
                            [slot](const Posting& p) { return p.slot == slot; }));
    if (list.empty()) postings_.erase(pit);
  }
  doc_slot_.erase(it);

  // Keep slots dense: move the last document into the freed slot and
  // rewrite its postings' slot ids.
  const auto last = static_cast<uint32_t>(slot_doc_.size() - 1);
  if (slot != last) {
    for (const TermId term : slot_terms_[last]) {
      auto& list = postings_.at(term);
      std::find_if(list.begin(), list.end(),
                   [last](const Posting& p) { return p.slot == last; })
          ->slot = slot;
    }
    slot_doc_[slot] = slot_doc_[last];
    slot_terms_[slot] = std::move(slot_terms_[last]);
    doc_slot_[slot_doc_[slot]] = slot;
  }
  slot_doc_.pop_back();
  slot_terms_.pop_back();
  return true;
}

std::vector<ScoredDoc> LocalIndex::score_all(const SparseVector& query,
                                             ScoreArena& arena) const {
  if (arena.acc.size() < slot_doc_.size()) {
    arena.acc.resize(slot_doc_.size(), 0.0);
    arena.seen.resize(slot_doc_.size(), 0);
  }
  arena.touched.clear();
  const auto qterms = query.terms();
  const auto qweights = query.weights();
  for (size_t t = 0; t < qterms.size(); ++t) {
    const auto pit = postings_.find(qterms[t]);
    if (pit == postings_.end()) continue;
    const double qw = qweights[t];
    for (const auto& p : pit->second) {
      if (!arena.seen[p.slot]) {
        arena.seen[p.slot] = 1;
        arena.touched.push_back(p.slot);
      }
      arena.acc[p.slot] += qw * p.weight;
    }
  }
  std::vector<ScoredDoc> out;
  out.reserve(arena.touched.size());
  for (const uint32_t slot : arena.touched) {
    out.push_back({slot_doc_[slot], arena.acc[slot]});
    arena.acc[slot] = 0.0;  // restore the all-zero invariant
    arena.seen[slot] = 0;
  }
  std::sort(out.begin(), out.end(), [](const ScoredDoc& a, const ScoredDoc& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.doc < b.doc;
  });
  return out;
}

ScoreArena& LocalIndex::thread_arena() {
  static thread_local ScoreArena arena;
  return arena;
}

std::vector<ScoredDoc> LocalIndex::evaluate(const SparseVector& query,
                                            double threshold) const {
  return evaluate(query, threshold, thread_arena());
}

std::vector<ScoredDoc> LocalIndex::evaluate(const SparseVector& query, double threshold,
                                            ScoreArena& arena) const {
  std::vector<ScoredDoc> scored = score_all(query, arena);
  if (threshold <= 0.0) return scored;  // positive scores only, by construction
  const auto cut = std::find_if(scored.begin(), scored.end(), [threshold](const ScoredDoc& d) {
    return d.score < threshold;
  });
  scored.erase(cut, scored.end());
  return scored;
}

std::vector<ScoredDoc> LocalIndex::top_k(const SparseVector& query, size_t k) const {
  std::vector<ScoredDoc> scored = score_all(query, thread_arena());
  if (scored.size() > k) scored.resize(k);
  return scored;
}

std::vector<DocId> LocalIndex::document_ids() const {
  return slot_doc_;
}

}  // namespace ges::ir
