#pragma once

#include <span>

#include "ir/sparse_vector.hpp"

namespace ges::ir {

/// Build a node vector from a node's documents (paper §4.2):
///  1. sum the documents' raw term-frequency vectors,
///  2. replace each summed frequency f_t with 1 + ln(f_t),
///  3. L2-normalize,
///  4. if size > 0, keep the `size` heaviest terms and re-normalize
///     ("node vector size" study, paper §6.2; size == 0 means full).
SparseVector build_node_vector(std::span<const SparseVector> doc_count_vectors,
                               size_t size = 0);

/// Truncate an existing (normalized) node vector to its `size` heaviest
/// terms and re-normalize. size == 0 is the identity.
SparseVector truncate_node_vector(const SparseVector& full, size_t size);

}  // namespace ges::ir
