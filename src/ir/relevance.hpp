#pragma once

#include <cstdint>
#include <vector>

#include "ir/sparse_vector.hpp"

namespace ges::ir {

/// REL(D, Q) — Eq. 1: dot product of (already normalized) document and
/// query vectors.
inline double rel_doc_query(const SparseVector& doc, const SparseVector& query) {
  return doc.dot(query);
}

/// REL(X, Y) — Eq. 2: dot product of two node vectors.
inline double rel_node_node(const SparseVector& x, const SparseVector& y) {
  return x.dot(y);
}

/// REL(X, Q) — Eq. 3: dot product of a node vector and a query vector
/// (used to bias walks towards relevant semantic groups).
inline double rel_node_query(const SparseVector& node, const SparseVector& query) {
  return node.dot(query);
}

/// Epoch-stamped dense view of one sparse vector: a TermId -> weight
/// scatter array that turns scoring *many* vectors against one bound
/// vector into a single linear pass per vector with O(1) term lookups —
/// no merge join, no binary search. Rebinding bumps the epoch instead of
/// clearing the arrays, so a long-lived view costs O(|bound vector|) per
/// bind regardless of how large the term space has grown.
///
/// Bit-compatibility: dot() accumulates the matched products in ascending
/// term order of the argument vector — the same order every
/// SparseVector::dot strategy uses — and IEEE multiplication commutes
/// bitwise, so view scores are bit-identical to SparseVector::dot. The
/// golden-trace suites rely on this.
class DensifiedQuery {
 public:
  /// Make `v` the bound vector. The view keeps no reference: the scatter
  /// array snapshots the weights.
  void bind(const SparseVector& v) {
    if (++epoch_ == 0) {
      // u32 wraparound: stale stamps could alias the new epoch; reset.
      std::fill(epoch_of_.begin(), epoch_of_.end(), 0u);
      epoch_ = 1;
    }
    const auto terms = v.terms();
    const auto weights = v.weights();
    max_term_ = terms.empty() ? 0 : terms.back();
    if (!terms.empty() && max_term_ >= epoch_of_.size()) {
      epoch_of_.resize(max_term_ + 1, 0u);
      weight_of_.resize(max_term_ + 1, 0.0f);
    }
    for (size_t i = 0; i < terms.size(); ++i) {
      epoch_of_[terms[i]] = epoch_;
      weight_of_[terms[i]] = weights[i];
    }
    bound_size_ = terms.size();
  }

  bool contains(TermId term) const {
    return term < epoch_of_.size() && epoch_of_[term] == epoch_;
  }

  /// Weight of `term` in the bound vector, or 0 if absent. O(1).
  float weight(TermId term) const {
    return contains(term) ? weight_of_[term] : 0.0f;
  }

  /// Dot product of the bound vector with `v`: one linear pass over `v`'s
  /// SoA arrays. Bit-identical to bound.dot(v) (see class comment).
  double dot(const SparseVector& v) const {
    if (bound_size_ == 0) return 0.0;
    double sum = 0.0;
    const auto terms = v.terms();
    const auto weights = v.weights();
    for (size_t i = 0; i < terms.size(); ++i) {
      const TermId term = terms[i];
      if (term > max_term_) break;  // sorted: no further matches possible
      if (epoch_of_[term] == epoch_) {
        sum += static_cast<double>(weight_of_[term]) * weights[i];
      }
    }
    return sum;
  }

  /// Number of components in the bound vector (0 before any bind).
  size_t bound_size() const { return bound_size_; }

 private:
  std::vector<uint32_t> epoch_of_;  // term -> epoch of its last bind
  std::vector<float> weight_of_;    // term -> weight under that epoch
  TermId max_term_ = 0;
  size_t bound_size_ = 0;
  uint32_t epoch_ = 0;
};

}  // namespace ges::ir
