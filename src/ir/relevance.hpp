#pragma once

#include "ir/sparse_vector.hpp"

namespace ges::ir {

/// REL(D, Q) — Eq. 1: dot product of (already normalized) document and
/// query vectors.
inline double rel_doc_query(const SparseVector& doc, const SparseVector& query) {
  return doc.dot(query);
}

/// REL(X, Y) — Eq. 2: dot product of two node vectors.
inline double rel_node_node(const SparseVector& x, const SparseVector& y) {
  return x.dot(y);
}

/// REL(X, Q) — Eq. 3: dot product of a node vector and a query vector
/// (used to bias walks towards relevant semantic groups).
inline double rel_node_query(const SparseVector& node, const SparseVector& query) {
  return node.dot(query);
}

}  // namespace ges::ir
