#include "ir/porter_stemmer.hpp"

#include <cstring>

namespace ges::ir {

namespace {

// Direct port of Martin Porter's reference implementation (1980 algorithm,
// original rule set). The buffer holds the word; k is the index of its
// last letter and j marks the candidate stem end while matching suffixes.
class Stemmer {
 public:
  explicit Stemmer(std::string_view word) : b_(word), k_(static_cast<int>(word.size()) - 1) {}

  std::string run() {
    if (k_ <= 1) return b_;  // words of length <= 2 are left unchanged
    step1ab();
    step1c();
    step2();
    step3();
    step4();
    step5();
    b_.resize(static_cast<size_t>(k_) + 1);
    return b_;
  }

 private:
  bool cons(int i) const {
    switch (b_[static_cast<size_t>(i)]) {
      case 'a': case 'e': case 'i': case 'o': case 'u':
        return false;
      case 'y':
        return i == 0 ? true : !cons(i - 1);
      default:
        return true;
    }
  }

  // Number of consonant-vowel sequences ("measure") in b[0..j].
  int m() const {
    int n = 0;
    int i = 0;
    for (;;) {
      if (i > j_) return n;
      if (!cons(i)) break;
      ++i;
    }
    ++i;
    for (;;) {
      for (;;) {
        if (i > j_) return n;
        if (cons(i)) break;
        ++i;
      }
      ++i;
      ++n;
      for (;;) {
        if (i > j_) return n;
        if (!cons(i)) break;
        ++i;
      }
      ++i;
    }
  }

  bool vowel_in_stem() const {
    for (int i = 0; i <= j_; ++i) {
      if (!cons(i)) return true;
    }
    return false;
  }

  bool doublec(int j) const {
    if (j < 1) return false;
    if (b_[static_cast<size_t>(j)] != b_[static_cast<size_t>(j - 1)]) return false;
    return cons(j);
  }

  // cvc(i) — consonant-vowel-consonant ending at i, where the final
  // consonant is not w, x or y. Used to restore a trailing 'e'.
  bool cvc(int i) const {
    if (i < 2 || !cons(i) || cons(i - 1) || !cons(i - 2)) return false;
    const char ch = b_[static_cast<size_t>(i)];
    return ch != 'w' && ch != 'x' && ch != 'y';
  }

  bool ends(const char* s) {
    const auto length = static_cast<int>(std::strlen(s));
    if (length > k_ + 1) return false;
    if (std::memcmp(b_.data() + (k_ - length + 1), s, static_cast<size_t>(length)) != 0) {
      return false;
    }
    j_ = k_ - length;
    return true;
  }

  void set_to(const char* s) {
    const auto length = static_cast<int>(std::strlen(s));
    b_.resize(static_cast<size_t>(j_) + 1);
    b_.append(s);
    k_ = j_ + length;
  }

  void r(const char* s) {
    if (m() > 0) set_to(s);
  }

  // step1ab: plurals and -ed / -ing.
  void step1ab() {
    if (b_[static_cast<size_t>(k_)] == 's') {
      if (ends("sses")) {
        k_ -= 2;
      } else if (ends("ies")) {
        set_to("i");
      } else if (b_[static_cast<size_t>(k_ - 1)] != 's') {
        --k_;
      }
    }
    if (ends("eed")) {
      if (m() > 0) --k_;
    } else if ((ends("ed") || ends("ing")) && vowel_in_stem()) {
      k_ = j_;
      if (ends("at")) {
        set_to("ate");
      } else if (ends("bl")) {
        set_to("ble");
      } else if (ends("iz")) {
        set_to("ize");
      } else if (doublec(k_)) {
        --k_;
        const char ch = b_[static_cast<size_t>(k_)];
        if (ch == 'l' || ch == 's' || ch == 'z') ++k_;
      } else if (m() == 1 && cvc(k_)) {
        set_to("e");
      }
    }
  }

  // step1c: terminal y -> i when there is another vowel in the stem.
  void step1c() {
    if (ends("y") && vowel_in_stem()) b_[static_cast<size_t>(k_)] = 'i';
  }

  // step2: double suffixes -> single ones (m > 0).
  void step2() {
    if (k_ < 1) return;
    switch (b_[static_cast<size_t>(k_ - 1)]) {
      case 'a':
        if (ends("ational")) { r("ate"); break; }
        if (ends("tional")) { r("tion"); break; }
        break;
      case 'c':
        if (ends("enci")) { r("ence"); break; }
        if (ends("anci")) { r("ance"); break; }
        break;
      case 'e':
        if (ends("izer")) { r("ize"); break; }
        break;
      case 'l':
        if (ends("abli")) { r("able"); break; }
        if (ends("alli")) { r("al"); break; }
        if (ends("entli")) { r("ent"); break; }
        if (ends("eli")) { r("e"); break; }
        if (ends("ousli")) { r("ous"); break; }
        break;
      case 'o':
        if (ends("ization")) { r("ize"); break; }
        if (ends("ation")) { r("ate"); break; }
        if (ends("ator")) { r("ate"); break; }
        break;
      case 's':
        if (ends("alism")) { r("al"); break; }
        if (ends("iveness")) { r("ive"); break; }
        if (ends("fulness")) { r("ful"); break; }
        if (ends("ousness")) { r("ous"); break; }
        break;
      case 't':
        if (ends("aliti")) { r("al"); break; }
        if (ends("iviti")) { r("ive"); break; }
        if (ends("biliti")) { r("ble"); break; }
        break;
      default:
        break;
    }
  }

  // step3: -ic-, -full, -ness etc. (m > 0).
  void step3() {
    switch (b_[static_cast<size_t>(k_)]) {
      case 'e':
        if (ends("icate")) { r("ic"); break; }
        if (ends("ative")) { r(""); break; }
        if (ends("alize")) { r("al"); break; }
        break;
      case 'i':
        if (ends("iciti")) { r("ic"); break; }
        break;
      case 'l':
        if (ends("ical")) { r("ic"); break; }
        if (ends("ful")) { r(""); break; }
        break;
      case 's':
        if (ends("ness")) { r(""); break; }
        break;
      default:
        break;
    }
  }

  // step4: strip -ant, -ence etc. in context <c>vcvc<v> (m > 1).
  void step4() {
    if (k_ < 1) return;
    switch (b_[static_cast<size_t>(k_ - 1)]) {
      case 'a':
        if (ends("al")) break;
        return;
      case 'c':
        if (ends("ance")) break;
        if (ends("ence")) break;
        return;
      case 'e':
        if (ends("er")) break;
        return;
      case 'i':
        if (ends("ic")) break;
        return;
      case 'l':
        if (ends("able")) break;
        if (ends("ible")) break;
        return;
      case 'n':
        if (ends("ant")) break;
        if (ends("ement")) break;
        if (ends("ment")) break;
        if (ends("ent")) break;
        return;
      case 'o':
        if (ends("ion") && j_ >= 0 &&
            (b_[static_cast<size_t>(j_)] == 's' || b_[static_cast<size_t>(j_)] == 't')) {
          break;
        }
        if (ends("ou")) break;  // e.g. -nou as in "homologou"
        return;
      case 's':
        if (ends("ism")) break;
        return;
      case 't':
        if (ends("ate")) break;
        if (ends("iti")) break;
        return;
      case 'u':
        if (ends("ous")) break;
        return;
      case 'v':
        if (ends("ive")) break;
        return;
      case 'z':
        if (ends("ize")) break;
        return;
      default:
        return;
    }
    if (m() > 1) k_ = j_;
  }

  // step5: remove final -e and reduce -ll in long stems.
  void step5() {
    j_ = k_;
    if (b_[static_cast<size_t>(k_)] == 'e') {
      const int a = m();
      if (a > 1 || (a == 1 && !cvc(k_ - 1))) --k_;
    }
    if (b_[static_cast<size_t>(k_)] == 'l' && doublec(k_) && m() > 1) --k_;
  }

  std::string b_;
  int k_;
  int j_ = 0;
};

}  // namespace

std::string porter_stem(std::string_view word) { return Stemmer(word).run(); }

}  // namespace ges::ir
