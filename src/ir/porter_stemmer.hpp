#pragma once

#include <string>
#include <string_view>

namespace ges::ir {

/// Classic Porter (1980) suffix-stripping stemmer, as used by SMART-era
/// IR systems and by the paper ("restarted"/"restarts"/"restarting" ->
/// "restart"). Input must be lower-case alphabetic (the tokenizer's output
/// form); other inputs are returned unchanged where the algorithm's rules
/// do not apply.
///
/// This is the original algorithm (including the abli->able rule), not the
/// later "Porter2"/Snowball revision.
std::string porter_stem(std::string_view word);

}  // namespace ges::ir
