#include "ir/tokenizer.hpp"

#include <cctype>

namespace ges::ir {

std::vector<std::string> Tokenizer::tokenize(std::string_view text) const {
  std::vector<std::string> out;
  tokenize_into(text, out);
  return out;
}

void Tokenizer::tokenize_into(std::string_view text, std::vector<std::string>& out) const {
  std::string token;
  auto flush = [&] {
    if (token.size() >= min_length_ && token.size() <= max_length_) out.push_back(token);
    token.clear();
  };
  for (const char c : text) {
    const auto uc = static_cast<unsigned char>(c);
    if (std::isalpha(uc) != 0) {
      token.push_back(static_cast<char>(std::tolower(uc)));
    } else {
      flush();
    }
  }
  flush();
}

}  // namespace ges::ir
