#include "corpus/synthetic_corpus.hpp"

#include <algorithm>

#include "corpus/df_filter.hpp"
#include <cstdio>
#include <unordered_map>
#include <unordered_set>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace ges::corpus {

using util::Rng;
using util::Scale;
using util::ZipfSampler;

SyntheticCorpusParams SyntheticCorpusParams::for_scale(Scale scale) {
  SyntheticCorpusParams p;
  switch (scale) {
    case Scale::kTiny:
      p.nodes = 24;
      p.max_df_fraction = 0.30;  // topic share is 1/8; keep the cores
      p.vocabulary = 1'200;
      p.topics = 8;
      p.queries = 6;
      p.docs_per_node_mu = 1.6;
      p.docs_per_node_sigma = 0.7;
      p.tokens_per_doc_mu = 4.6;
      p.tokens_per_doc_sigma = 0.4;
      p.topic_core_size = 300;
      p.query_term_pool = 20;
      break;
    case Scale::kSmall:
      p.nodes = 120;
      p.max_df_fraction = 0.12;  // topic share is 1/24; keep the cores
      p.vocabulary = 6'000;
      p.topics = 24;
      p.queries = 12;
      p.docs_per_node_mu = 2.2;
      p.docs_per_node_sigma = 0.9;
      p.tokens_per_doc_mu = 5.3;
      p.tokens_per_doc_sigma = 0.4;
      p.topic_core_size = 600;
      p.query_term_pool = 30;
      break;
    case Scale::kMedium:
      // The struct defaults (400 nodes, ~10k documents).
      break;
    case Scale::kFull:
      // The paper's scale: 1,880 nodes, ~80k documents (mean 42.5 per
      // node, 1st percentile 1, 99th percentile ~417), ~179 unique
      // terms per document, 50 queries of 3-4 terms.
      p.nodes = 1'880;
      p.vocabulary = 60'000;
      p.topics = 120;
      p.queries = 50;
      p.docs_per_node_mu = 2.95;
      p.docs_per_node_sigma = 1.265;
      p.tokens_per_doc_mu = 6.0;
      p.tokens_per_doc_sigma = 0.45;
      p.topic_core_size = 1'500;
      break;
  }
  return p;
}

namespace {

/// Geometric-decay interest weights (first interest dominates), matching
/// the paper's observation that authors write mostly, but not only, about
/// a few areas.
std::vector<double> interest_weights(size_t count, double decay) {
  std::vector<double> w(count);
  double v = 1.0;
  for (auto& x : w) {
    x = v;
    v *= decay;
  }
  return w;
}

}  // namespace

Corpus generate_synthetic_corpus(const SyntheticCorpusParams& params) {
  return generate_synthetic_corpus(params, &util::global_pool());
}

Corpus generate_synthetic_corpus(const SyntheticCorpusParams& params,
                                 util::ThreadPool* pool) {
  GES_CHECK(params.nodes > 0);
  GES_CHECK(params.vocabulary > 0);
  GES_CHECK(params.topics > 0);
  GES_CHECK_MSG(params.queries <= params.topics,
                "need one distinct topic per query (queries="
                    << params.queries << ", topics=" << params.topics << ")");
  GES_CHECK(params.topic_core_size <= params.vocabulary);
  GES_CHECK(params.query_term_pool <= params.topic_core_size);
  GES_CHECK(params.query_terms_min >= 1);
  GES_CHECK(params.query_terms_min <= params.query_terms_max);
  GES_CHECK(params.topic_mix >= 0.0 && params.topic_mix <= 1.0);

  Corpus corpus;

  // Intern the vocabulary so TermId i corresponds to "termNNNNNN".
  for (size_t i = 0; i < params.vocabulary; ++i) {
    char name[32];
    std::snprintf(name, sizeof(name), "term%06zu", i);
    const ir::TermId id = corpus.dict.intern(name);
    GES_CHECK(id == static_cast<ir::TermId>(i));
  }

  Rng structure_rng(util::derive_seed(params.seed, 0));

  // Background distribution: Zipf over a random permutation of the
  // vocabulary (so TermId order carries no frequency information).
  std::vector<ir::TermId> background_perm(params.vocabulary);
  for (size_t i = 0; i < params.vocabulary; ++i) {
    background_perm[i] = static_cast<ir::TermId>(i);
  }
  structure_rng.shuffle(background_perm);
  const ZipfSampler background_zipf(params.vocabulary, params.background_alpha);

  // Topic cores: per-topic random term subsets with Zipf-ranked weights.
  std::vector<std::vector<ir::TermId>> topic_core(params.topics);
  for (size_t t = 0; t < params.topics; ++t) {
    const auto picks = structure_rng.sample_without_replacement(params.vocabulary,
                                                                params.topic_core_size);
    topic_core[t].reserve(picks.size());
    for (const size_t p : picks) topic_core[t].push_back(static_cast<ir::TermId>(p));
  }
  const ZipfSampler topic_zipf(params.topic_core_size, params.topic_alpha);

  // Author interests and personal style vocabularies. Each node draws
  // from its own derived RNG stream, so the loop parallelizes without
  // changing a single sample.
  std::vector<std::vector<TopicId>> node_interests(params.nodes);
  std::vector<std::vector<ir::TermId>> node_style(params.nodes);
  util::for_each_index(pool, params.nodes, [&](size_t n) {
    Rng rng(util::derive_seed(params.seed, 1'000'000 + n));
    const size_t count = std::min<size_t>(
        params.topics,
        1 + (params.interests_mean > 1.0 ? rng.poisson(params.interests_mean - 1.0) : 0));
    const auto picks = rng.sample_without_replacement(params.topics, count);
    for (const size_t p : picks) node_interests[n].push_back(static_cast<TopicId>(p));
    if (params.style_terms_per_node > 0) {
      const auto style = rng.sample_without_replacement(params.vocabulary,
                                                        params.style_terms_per_node);
      node_style[n].reserve(style.size());
      for (const size_t s : style) node_style[n].push_back(static_cast<ir::TermId>(s));
    }
  });

  // Documents: generated into per-node buffers (one derived RNG stream
  // per node, disjoint output slots), then stitched serially in node
  // order so DocIds come out exactly as the sequential loop assigns them.
  corpus.node_docs.resize(params.nodes);
  std::vector<std::vector<Document>> per_node(params.nodes);
  util::for_each_index(pool, params.nodes, [&](size_t n) {
    Rng rng(util::derive_seed(params.seed, 2'000'000 + n));
    const auto doc_count = static_cast<size_t>(std::max(
        1.0, rng.lognormal(params.docs_per_node_mu, params.docs_per_node_sigma) + 0.5));
    const auto weights = interest_weights(node_interests[n].size(), params.interest_decay);
    per_node[n].reserve(doc_count);
    for (size_t d = 0; d < doc_count; ++d) {
      TopicId topic;
      if (rng.chance(params.offtopic_prob)) {
        topic = static_cast<TopicId>(rng.index(params.topics));
      } else {
        topic = node_interests[n][rng.weighted_index(weights)];
      }
      const auto tokens = static_cast<size_t>(std::max(
          8.0, rng.lognormal(params.tokens_per_doc_mu, params.tokens_per_doc_sigma)));
      std::unordered_map<ir::TermId, uint32_t> counts;
      counts.reserve(tokens);
      for (size_t i = 0; i < tokens; ++i) {
        ir::TermId term;
        if (!node_style[n].empty() && rng.chance(params.style_mix)) {
          // Uniform over the style set: spread thin so style flavours the
          // vectors without taking over their top ranks.
          term = node_style[n][rng.index(node_style[n].size())];
        } else if (rng.chance(params.topic_mix)) {
          term = topic_core[topic][topic_zipf.sample(rng) - 1];
        } else {
          term = background_perm[background_zipf.sample(rng) - 1];
        }
        ++counts[term];
      }
      Document doc;
      doc.node = static_cast<NodeIndex>(n);
      doc.topic = topic;
      doc.counts = ir::SparseVector::from_counts(
          std::vector<std::pair<ir::TermId, uint32_t>>(counts.begin(), counts.end()));
      doc.vector = doc.counts;
      doc.vector.dampen();
      doc.vector.normalize();
      per_node[n].push_back(std::move(doc));
    }
  });
  for (size_t n = 0; n < params.nodes; ++n) {
    for (Document& doc : per_node[n]) {
      doc.id = static_cast<ir::DocId>(corpus.docs.size());
      corpus.node_docs[n].push_back(doc.id);
      corpus.docs.push_back(std::move(doc));
    }
    per_node[n].clear();
    per_node[n].shrink_to_fit();
  }

  // Queries: one distinct topic per query, terms drawn from the top
  // `query_term_pool` ranks of the topic core (see the rank-sampling
  // note below about the recall ceiling).
  Rng query_rng(util::derive_seed(params.seed, 3'000'000));
  const auto query_topics =
      query_rng.sample_without_replacement(params.topics, params.queries);
  for (size_t q = 0; q < params.queries; ++q) {
    Query query;
    query.id = static_cast<uint32_t>(q);
    query.topic = static_cast<TopicId>(query_topics[q]);
    const auto term_count = static_cast<size_t>(query_rng.uniform_int(
        static_cast<int64_t>(params.query_terms_min),
        static_cast<int64_t>(params.query_terms_max)));
    // Query terms: distinct core ranks drawn uniformly from [1, pool].
    // Uniform (rather than Zipf-weighted) sampling keeps some query terms
    // off the very top of the topic, so a small fraction of relevant
    // documents contain none of them — the mechanism behind the paper's
    // 98.5 % recall ceiling with short queries (§6.1(4)).
    std::unordered_set<size_t> ranks;
    while (ranks.size() < term_count) {
      ranks.insert(1 + query_rng.index(params.query_term_pool));
    }
    std::vector<ir::TermWeight> pairs;
    pairs.reserve(ranks.size());
    for (const size_t rank : ranks) {
      pairs.push_back({topic_core[query.topic][rank - 1], 1.0f});
    }
    query.vector = ir::SparseVector::from_pairs(std::move(pairs));
    query.vector.normalize();
    corpus.queries.push_back(std::move(query));
  }
  // Relevance judgments: a pure O(queries * docs) scan with no RNG, so it
  // fans out per query while the draws above stay on one stream.
  util::for_each_index(pool, corpus.queries.size(), [&](size_t q) {
    Query& query = corpus.queries[q];
    for (const auto& doc : corpus.docs) {
      if (doc.topic == query.topic) query.relevant.push_back(doc.id);
    }
  });

  if (params.max_df_fraction < 1.0) {
    remove_frequent_terms(corpus, params.max_df_fraction, 10, pool);
  }

  return corpus;
}

}  // namespace ges::corpus
