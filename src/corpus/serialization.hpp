#pragma once

#include <iosfwd>
#include <string>

#include "corpus/corpus.hpp"

namespace ges::corpus {

/// Binary corpus (de)serialization. Full-scale synthetic corpora take a
/// minute to generate; saving them lets benches and tools reload in
/// seconds. The format is little-endian, versioned, and validated on
/// load (util::CheckFailure on malformed input).
///
/// I/O is block-wise: save_corpus assembles the whole blob in memory and
/// issues a single write; load_corpus drains the remainder of the stream
/// in 64 KiB blocks and parses from memory (entry arrays move by memcpy),
/// so (de)serialization is bandwidth-bound, not stream-call-bound. A
/// corpus must therefore be the final payload of its stream.
///
/// Format v1: magic "GESC", u32 version, dictionary (u64 count, each
/// term length-prefixed), documents (u64 count; per doc: u32 node, u32
/// topic, counts vector as u64 count + (u32 term, f32 weight) pairs),
/// node_docs (u64 nodes; per node u64 count + u32 doc ids), queries
/// (u64 count; per query u32 id, u32 topic, vector, u64 relevant count +
/// u32 doc ids).
void save_corpus(const Corpus& corpus, std::ostream& out);
Corpus load_corpus(std::istream& in);

/// File convenience wrappers (throw util::CheckFailure on I/O errors;
/// failures name the offending path).
void save_corpus_file(const Corpus& corpus, const std::string& path);
Corpus load_corpus_file(const std::string& path);

}  // namespace ges::corpus
