#pragma once

#include <cstdint>

#include "corpus/corpus.hpp"
#include "util/env.hpp"
#include "util/thread_pool.hpp"

namespace ges::corpus {

/// Parameters of the synthetic AP-newswire substitute (DESIGN.md §5).
///
/// The generator is a topic model: `topics` topics over a shared
/// `vocabulary`; each topic owns a Zipf(topic_alpha)-weighted core of
/// `topic_core_size` terms; every token of a document is drawn from the
/// document's topic core with probability `topic_mix` and from the global
/// Zipf(background_alpha) background otherwise. Authors (= nodes) hold a
/// small set of interest topics; documents inherit a topic from their
/// author's interests (or, with probability `offtopic_prob`, a uniformly
/// random topic — authors are *not* single-topic, matching the paper's
/// observation in §5.3).
///
/// Queries are attached to distinct topics; their ~3.5 terms are sampled
/// from the topic core's top `query_term_pool` ranks. A document is judged
/// relevant to a query iff it was generated from the query's topic. Since
/// query terms sit below the very top of the core, a small fraction of
/// relevant documents contain none of them — reproducing the paper's
/// 98.5 % maximum recall with short queries.
struct SyntheticCorpusParams {
  uint64_t seed = 42;

  size_t nodes = 400;
  size_t vocabulary = 20'000;
  size_t topics = 60;
  size_t queries = 30;

  // Documents per node: lognormal(mu, sigma), clamped to >= 1. The full
  // scale (mu = 2.95, sigma = 1.265) matches the paper's mean 42.5,
  // 1st percentile 1, 99th percentile ~417.
  double docs_per_node_mu = 2.6;
  double docs_per_node_sigma = 1.1;

  // Tokens drawn per document: lognormal, clamped to >= 8. The full-scale
  // default yields ~179 unique terms per document.
  double tokens_per_doc_mu = 6.0;
  double tokens_per_doc_sigma = 0.45;

  // Topic structure.
  size_t topic_core_size = 1'500;
  double topic_alpha = 1.15;       // Zipf exponent within a topic core
  double background_alpha = 1.05;  // Zipf exponent of the global background
  double topic_mix = 0.85;          // P(token comes from the topic core)

  // Author interests. AP authors write across beats (paper §5.3 checked
  // this on TREC: most nodes hold documents relevant to several distinct
  // queries), so interests are several topics deep with flat-ish weights
  // plus a noticeable off-topic tail.
  double interests_mean = 2.4;   // interests per node ~ 1 + Poisson(mean - 1)
  double interest_decay = 0.5;   // geometric weight decay across interests
  double offtopic_prob = 0.12;   // P(doc topic is uniform random)

  // Author style: every node owns a personal vocabulary (names, places,
  // phrasing) mixed into each of its documents. Real newswire text has
  // strong author-specific regularities; this is what keeps a designated
  // node's global clustering (SETS) from being unrealistically clean.
  size_t style_terms_per_node = 200;
  double style_mix = 0.0;  // P(token comes from the author's style set)

  // "Highly frequent words" removal (paper §3): terms appearing in more
  // than this fraction of documents are stripped from all term vectors.
  // 1.0 disables the filter.
  double max_df_fraction = 0.05;

  // Queries.
  size_t query_terms_min = 3;
  size_t query_terms_max = 4;
  size_t query_term_pool = 50;  // query terms drawn from core ranks [1, pool]

  /// Paper-faithful / scaled-down presets.
  static SyntheticCorpusParams for_scale(util::Scale scale);
};

/// Generate a corpus from the parameters. Deterministic in `params.seed`
/// alone: per-node and per-query RNG streams (util::derive_seed) make the
/// output bit-identical at every thread count, so the default overload
/// runs document generation on util::global_pool().
Corpus generate_synthetic_corpus(const SyntheticCorpusParams& params);

/// Same, with an explicit pool: nullptr runs strictly serially (the
/// reference path); any pool produces byte-identical output.
Corpus generate_synthetic_corpus(const SyntheticCorpusParams& params,
                                 util::ThreadPool* pool);

}  // namespace ges::corpus
