#include "corpus/serialization.hpp"

#include <bit>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "util/check.hpp"

namespace ges::corpus {

namespace {

constexpr char kMagic[4] = {'G', 'E', 'S', 'C'};
constexpr uint32_t kVersion = 1;

// Little-endian primitive I/O. The simulator targets little-endian
// hosts; the asserts below keep a big-endian port honest.
static_assert(std::endian::native == std::endian::little,
              "corpus serialization assumes a little-endian host");

template <typename T>
void write_pod(std::ostream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  GES_CHECK_MSG(in.good(), "truncated corpus stream");
  return value;
}

void write_string(std::ostream& out, const std::string& s) {
  write_pod<uint64_t>(out, s.size());
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::istream& in) {
  const auto size = read_pod<uint64_t>(in);
  GES_CHECK_MSG(size <= (1u << 20), "implausible string length " << size);
  std::string s(size, '\0');
  in.read(s.data(), static_cast<std::streamsize>(size));
  GES_CHECK_MSG(in.good(), "truncated corpus stream");
  return s;
}

void write_vector(std::ostream& out, const ir::SparseVector& v) {
  write_pod<uint64_t>(out, v.size());
  for (const auto& e : v.entries()) {
    write_pod<uint32_t>(out, e.term);
    write_pod<float>(out, e.weight);
  }
}

ir::SparseVector read_vector(std::istream& in) {
  const auto size = read_pod<uint64_t>(in);
  GES_CHECK_MSG(size <= (1u << 26), "implausible vector size " << size);
  std::vector<ir::TermWeight> entries;
  entries.reserve(size);
  for (uint64_t i = 0; i < size; ++i) {
    const auto term = read_pod<uint32_t>(in);
    const auto weight = read_pod<float>(in);
    entries.push_back({term, weight});
  }
  return ir::SparseVector::from_pairs(std::move(entries));
}

}  // namespace

void save_corpus(const Corpus& corpus, std::ostream& out) {
  out.write(kMagic, sizeof(kMagic));
  write_pod<uint32_t>(out, kVersion);

  write_pod<uint64_t>(out, corpus.dict.size());
  for (size_t t = 0; t < corpus.dict.size(); ++t) {
    write_string(out, corpus.dict.term(static_cast<ir::TermId>(t)));
  }

  write_pod<uint64_t>(out, corpus.docs.size());
  for (const auto& doc : corpus.docs) {
    write_pod<uint32_t>(out, doc.node);
    write_pod<uint32_t>(out, doc.topic);
    write_vector(out, doc.counts);
  }

  write_pod<uint64_t>(out, corpus.node_docs.size());
  for (const auto& docs : corpus.node_docs) {
    write_pod<uint64_t>(out, docs.size());
    for (const auto d : docs) write_pod<uint32_t>(out, d);
  }

  write_pod<uint64_t>(out, corpus.queries.size());
  for (const auto& q : corpus.queries) {
    write_pod<uint32_t>(out, q.id);
    write_pod<uint32_t>(out, q.topic);
    write_vector(out, q.vector);
    write_pod<uint64_t>(out, q.relevant.size());
    for (const auto d : q.relevant) write_pod<uint32_t>(out, d);
  }
  GES_CHECK_MSG(out.good(), "corpus write failed");
}

Corpus load_corpus(std::istream& in) {
  char magic[4];
  in.read(magic, sizeof(magic));
  GES_CHECK_MSG(in.good() && std::memcmp(magic, kMagic, sizeof(kMagic)) == 0,
                "not a GES corpus stream");
  const auto version = read_pod<uint32_t>(in);
  GES_CHECK_MSG(version == kVersion, "unsupported corpus version " << version);

  Corpus corpus;
  const auto terms = read_pod<uint64_t>(in);
  for (uint64_t t = 0; t < terms; ++t) {
    const auto id = corpus.dict.intern(read_string(in));
    GES_CHECK_MSG(id == t, "duplicate term in dictionary at " << t);
  }

  const auto docs = read_pod<uint64_t>(in);
  corpus.docs.reserve(docs);
  for (uint64_t d = 0; d < docs; ++d) {
    Document doc;
    doc.id = static_cast<ir::DocId>(d);
    doc.node = read_pod<uint32_t>(in);
    doc.topic = read_pod<uint32_t>(in);
    doc.counts = read_vector(in);
    doc.vector = doc.counts;
    doc.vector.dampen();
    doc.vector.normalize();
    corpus.docs.push_back(std::move(doc));
  }

  const auto nodes = read_pod<uint64_t>(in);
  corpus.node_docs.resize(nodes);
  for (uint64_t n = 0; n < nodes; ++n) {
    const auto count = read_pod<uint64_t>(in);
    GES_CHECK(count <= docs);
    corpus.node_docs[n].reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
      const auto d = read_pod<uint32_t>(in);
      GES_CHECK_MSG(d < docs, "document id out of range");
      GES_CHECK_MSG(corpus.docs[d].node == n, "node_docs inconsistent with docs");
      corpus.node_docs[n].push_back(d);
    }
  }

  const auto queries = read_pod<uint64_t>(in);
  corpus.queries.reserve(queries);
  for (uint64_t q = 0; q < queries; ++q) {
    Query query;
    query.id = read_pod<uint32_t>(in);
    query.topic = read_pod<uint32_t>(in);
    query.vector = read_vector(in);
    const auto relevant = read_pod<uint64_t>(in);
    GES_CHECK(relevant <= docs);
    query.relevant.reserve(relevant);
    for (uint64_t i = 0; i < relevant; ++i) {
      const auto d = read_pod<uint32_t>(in);
      GES_CHECK_MSG(d < docs, "relevant doc id out of range");
      query.relevant.push_back(d);
    }
    corpus.queries.push_back(std::move(query));
  }
  return corpus;
}

void save_corpus_file(const Corpus& corpus, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  GES_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  save_corpus(corpus, out);
}

Corpus load_corpus_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  GES_CHECK_MSG(in.good(), "cannot open " << path);
  return load_corpus(in);
}

}  // namespace ges::corpus
