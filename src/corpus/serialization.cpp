#include "corpus/serialization.hpp"

#include <bit>
#include <cstddef>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "util/check.hpp"

namespace ges::corpus {

namespace {

constexpr char kMagic[4] = {'G', 'E', 'S', 'C'};
constexpr uint32_t kVersion = 1;

// Little-endian primitive I/O. The simulator targets little-endian
// hosts; the asserts below keep a big-endian port honest.
static_assert(std::endian::native == std::endian::little,
              "corpus serialization assumes a little-endian host");

// Sparse-vector entries are written as their in-memory representation
// (u32 term, f32 weight — 8 bytes, no padding), so whole entry arrays
// move with a single memcpy instead of per-entry stream calls.
static_assert(sizeof(ir::TermWeight) == 8 && offsetof(ir::TermWeight, weight) == 4,
              "TermWeight must be {u32 term, f32 weight} with no padding");
static_assert(sizeof(ir::DocId) == 4, "doc-id arrays are written as u32 blocks");

/// Growable in-memory sink; the whole corpus is assembled here and
/// flushed with one ostream write, so serialization cost is memory
/// bandwidth rather than per-field stream-call overhead.
class ByteSink {
 public:
  template <typename T>
  void pod(T value) {
    buf_.append(reinterpret_cast<const char*>(&value), sizeof(T));
  }

  void bytes(const void* data, size_t size) {
    buf_.append(static_cast<const char*>(data), size);
  }

  void string(const std::string& s) {
    pod<uint64_t>(s.size());
    buf_.append(s);
  }

  void vector(const ir::SparseVector& v) {
    pod<uint64_t>(v.size());
    // Interleave the SoA arrays back into the on-disk AoS layout; the
    // format bytes are unchanged from the interleaved-storage era.
    const auto terms = v.terms();
    const auto weights = v.weights();
    interleave_.resize(terms.size());
    for (size_t i = 0; i < terms.size(); ++i) {
      interleave_[i] = {terms[i], weights[i]};
    }
    bytes(interleave_.data(), interleave_.size() * sizeof(ir::TermWeight));
  }

  void doc_ids(const std::vector<ir::DocId>& ids) {
    bytes(ids.data(), ids.size() * sizeof(ir::DocId));
  }

  void reserve(size_t n) { buf_.reserve(n); }
  const std::string& str() const { return buf_; }

 private:
  std::string buf_;
  std::vector<ir::TermWeight> interleave_;  // reused vector() scratch
};

/// Bounds-checked reader over a fully buffered corpus blob.
class ByteSource {
 public:
  explicit ByteSource(std::string data) : data_(std::move(data)), pos_(0) {}

  template <typename T>
  T pod() {
    T value{};
    take(&value, sizeof(T));
    return value;
  }

  void take(void* out, size_t size) {
    GES_CHECK_MSG(size <= data_.size() - pos_, "truncated corpus stream");
    // GCC (-O2+) cannot see through the moved-from SSO union of `data_`
    // and flags this memcpy as maybe-uninitialized; the bounds check
    // above guarantees the read stays inside the buffered blob.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
    std::memcpy(out, data_.data() + pos_, size);
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif
    pos_ += size;
  }

  std::string string() {
    const auto size = pod<uint64_t>();
    GES_CHECK_MSG(size <= (1u << 20), "implausible string length " << size);
    std::string s(size, '\0');
    take(s.data(), size);
    return s;
  }

  ir::SparseVector vector() {
    const auto size = pod<uint64_t>();
    GES_CHECK_MSG(size <= (1u << 26), "implausible vector size " << size);
    std::vector<ir::TermWeight> entries(size);
    take(entries.data(), size * sizeof(ir::TermWeight));
    return ir::SparseVector::from_pairs(std::move(entries));
  }

 private:
  std::string data_;
  size_t pos_;
};

/// Drain the remainder of `in` in large blocks (the corpus occupies the
/// rest of the stream by format contract).
std::string slurp(std::istream& in) {
  std::string data;
  char block[1 << 16];
  while (in.read(block, sizeof(block)) || in.gcount() > 0) {
    data.append(block, static_cast<size_t>(in.gcount()));
  }
  return data;
}

}  // namespace

void save_corpus(const Corpus& corpus, std::ostream& out) {
  ByteSink sink;
  // Rough pre-size: entries dominate (8 bytes each) plus headers.
  size_t estimate = 64 + corpus.dict.size() * 16;
  for (const auto& doc : corpus.docs) estimate += 32 + doc.counts.size() * 8;
  sink.reserve(estimate);

  sink.bytes(kMagic, sizeof(kMagic));
  sink.pod<uint32_t>(kVersion);

  sink.pod<uint64_t>(corpus.dict.size());
  for (size_t t = 0; t < corpus.dict.size(); ++t) {
    sink.string(corpus.dict.term(static_cast<ir::TermId>(t)));
  }

  sink.pod<uint64_t>(corpus.docs.size());
  for (const auto& doc : corpus.docs) {
    sink.pod<uint32_t>(doc.node);
    sink.pod<uint32_t>(doc.topic);
    sink.vector(doc.counts);
  }

  sink.pod<uint64_t>(corpus.node_docs.size());
  for (const auto& docs : corpus.node_docs) {
    sink.pod<uint64_t>(docs.size());
    sink.doc_ids(docs);
  }

  sink.pod<uint64_t>(corpus.queries.size());
  for (const auto& q : corpus.queries) {
    sink.pod<uint32_t>(q.id);
    sink.pod<uint32_t>(q.topic);
    sink.vector(q.vector);
    sink.pod<uint64_t>(q.relevant.size());
    sink.doc_ids(q.relevant);
  }

  out.write(sink.str().data(), static_cast<std::streamsize>(sink.str().size()));
  GES_CHECK_MSG(out.good(), "corpus write failed");
}

Corpus load_corpus(std::istream& in) {
  ByteSource src(slurp(in));

  char magic[4];
  src.take(magic, sizeof(magic));
  GES_CHECK_MSG(std::memcmp(magic, kMagic, sizeof(kMagic)) == 0,
                "not a GES corpus stream");
  const auto version = src.pod<uint32_t>();
  GES_CHECK_MSG(version == kVersion, "unsupported corpus version " << version);

  Corpus corpus;
  const auto terms = src.pod<uint64_t>();
  for (uint64_t t = 0; t < terms; ++t) {
    const auto id = corpus.dict.intern(src.string());
    GES_CHECK_MSG(id == t, "duplicate term in dictionary at " << t);
  }

  const auto docs = src.pod<uint64_t>();
  corpus.docs.reserve(docs);
  for (uint64_t d = 0; d < docs; ++d) {
    Document doc;
    doc.id = static_cast<ir::DocId>(d);
    doc.node = src.pod<uint32_t>();
    doc.topic = src.pod<uint32_t>();
    doc.counts = src.vector();
    doc.vector = doc.counts;
    doc.vector.dampen();
    doc.vector.normalize();
    corpus.docs.push_back(std::move(doc));
  }

  const auto nodes = src.pod<uint64_t>();
  corpus.node_docs.resize(nodes);
  for (uint64_t n = 0; n < nodes; ++n) {
    const auto count = src.pod<uint64_t>();
    GES_CHECK(count <= docs);
    corpus.node_docs[n].resize(count);
    src.take(corpus.node_docs[n].data(), count * sizeof(ir::DocId));
    for (const auto d : corpus.node_docs[n]) {
      GES_CHECK_MSG(d < docs, "document id out of range");
      GES_CHECK_MSG(corpus.docs[d].node == n, "node_docs inconsistent with docs");
    }
  }

  const auto queries = src.pod<uint64_t>();
  corpus.queries.reserve(queries);
  for (uint64_t q = 0; q < queries; ++q) {
    Query query;
    query.id = src.pod<uint32_t>();
    query.topic = src.pod<uint32_t>();
    query.vector = src.vector();
    const auto relevant = src.pod<uint64_t>();
    GES_CHECK(relevant <= docs);
    query.relevant.resize(relevant);
    src.take(query.relevant.data(), relevant * sizeof(ir::DocId));
    for (const auto d : query.relevant) {
      GES_CHECK_MSG(d < docs, "relevant doc id out of range");
    }
    corpus.queries.push_back(std::move(query));
  }
  return corpus;
}

void save_corpus_file(const Corpus& corpus, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  GES_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  try {
    save_corpus(corpus, out);
  } catch (const util::CheckFailure& e) {
    throw util::CheckFailure(std::string(e.what()) + " [while writing " + path + "]");
  }
}

Corpus load_corpus_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  GES_CHECK_MSG(in.good(), "cannot open " << path);
  try {
    return load_corpus(in);
  } catch (const util::CheckFailure& e) {
    throw util::CheckFailure(std::string(e.what()) + " [while loading " + path + "]");
  }
}

}  // namespace ges::corpus
