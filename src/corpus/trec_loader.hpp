#pragma once

#include <istream>
#include <string>
#include <vector>

#include "corpus/corpus.hpp"
#include "util/thread_pool.hpp"

namespace ges::corpus {

/// One raw TREC SGML document (<DOC> ... </DOC>).
struct TrecRawDoc {
  std::string docno;   // <DOCNO>
  std::string author;  // <BYLINE> (AP newswire author credit)
  std::string text;    // <TEXT>, possibly multiple sections concatenated
};

/// One raw TREC topic (<top> ... </top>); only the title is used for
/// queries, as in the paper (TREC-3 ad-hoc topics 151-200).
struct TrecRawTopic {
  uint32_t number = 0;  // <num>
  std::string title;    // <title>
};

/// One qrels judgment line: "topic 0 docno relevance".
struct TrecJudgment {
  uint32_t topic = 0;
  std::string docno;
  int relevance = 0;
};

/// Parse the TREC SGML document stream. Documents without a DOCNO are
/// rejected (throws util::CheckFailure); missing BYLINE/TEXT yield empty
/// fields, mirroring the paper's filtering of docs lacking author/text.
std::vector<TrecRawDoc> parse_trec_docs(std::istream& in);

/// Parse a TREC topics stream (title field only).
std::vector<TrecRawTopic> parse_trec_topics(std::istream& in);

/// Parse a qrels stream. Malformed lines are skipped.
std::vector<TrecJudgment> parse_trec_qrels(std::istream& in);

/// Assemble a Corpus the way the paper does (§5.3): keep documents with
/// non-empty author and text; one node per distinct author; documents and
/// queries are run through the full VSM pipeline (stop words + Porter +
/// removal of terms appearing in more than `max_df_fraction` of the
/// documents); judgments referencing dropped documents are discarded.
///
/// Document analysis (tokenize -> stop -> stem) and vector construction
/// run on util::global_pool(); interning goes through a
/// ShardedTermDictionary whose freeze pass assigns global TermIds in
/// canonical first-occurrence order, so the corpus is bit-identical to a
/// strictly serial build at every thread count.
Corpus build_corpus_from_trec(const std::vector<TrecRawDoc>& docs,
                              const std::vector<TrecRawTopic>& topics,
                              const std::vector<TrecJudgment>& qrels,
                              double max_df_fraction = 0.10);

/// Same, with an explicit pool: nullptr runs strictly serially (the
/// reference path); any pool produces byte-identical output.
Corpus build_corpus_from_trec(const std::vector<TrecRawDoc>& docs,
                              const std::vector<TrecRawTopic>& topics,
                              const std::vector<TrecJudgment>& qrels,
                              double max_df_fraction, util::ThreadPool* pool);

/// Convenience: load the three files from disk.
Corpus load_trec_corpus(const std::string& docs_path, const std::string& topics_path,
                        const std::string& qrels_path);

}  // namespace ges::corpus
