#include "corpus/corpus_stats.hpp"

#include <sstream>
#include <unordered_set>

#include "util/stats.hpp"

namespace ges::corpus {

CorpusStats compute_stats(const Corpus& corpus) {
  CorpusStats s;
  s.nodes = corpus.num_nodes();
  s.docs = corpus.num_docs();
  s.vocabulary = corpus.dict.size();
  s.queries = corpus.queries.size();

  std::vector<double> docs_per_node;
  docs_per_node.reserve(s.nodes);
  util::Accumulator docs_acc;
  for (const auto& docs : corpus.node_docs) {
    docs_per_node.push_back(static_cast<double>(docs.size()));
    docs_acc.add(static_cast<double>(docs.size()));
  }
  s.mean_docs_per_node = docs_acc.mean();
  s.p1_docs_per_node = util::percentile(docs_per_node, 1.0);
  s.p99_docs_per_node = util::percentile(docs_per_node, 99.0);

  util::Accumulator terms_acc;
  for (const auto& doc : corpus.docs) terms_acc.add(static_cast<double>(doc.counts.size()));
  s.mean_unique_terms_per_doc = terms_acc.mean();

  util::Accumulator query_terms_acc;
  util::Accumulator relevant_acc;
  std::vector<std::unordered_set<uint32_t>> node_queries(s.nodes);
  for (const auto& q : corpus.queries) {
    query_terms_acc.add(static_cast<double>(q.vector.size()));
    relevant_acc.add(static_cast<double>(q.relevant.size()));
    for (const ir::DocId d : q.relevant) {
      node_queries[corpus.docs[d].node].insert(q.id);
    }
  }
  s.mean_query_terms = query_terms_acc.mean();
  s.mean_relevant_per_query = relevant_acc.mean();

  size_t multi = 0;
  for (const auto& queries : node_queries) {
    if (queries.size() >= 2) ++multi;
    s.max_queries_per_node = std::max(s.max_queries_per_node, queries.size());
  }
  s.frac_nodes_multi_query = s.nodes == 0 ? 0.0 : static_cast<double>(multi) / s.nodes;

  return s;
}

std::string format_stats(const CorpusStats& s) {
  std::ostringstream os;
  os << "nodes: " << s.nodes << '\n'
     << "documents: " << s.docs << '\n'
     << "vocabulary: " << s.vocabulary << '\n'
     << "queries: " << s.queries << '\n'
     << "docs/node mean: " << s.mean_docs_per_node << '\n'
     << "docs/node p1: " << s.p1_docs_per_node << '\n'
     << "docs/node p99: " << s.p99_docs_per_node << '\n'
     << "unique terms/doc mean: " << s.mean_unique_terms_per_doc << '\n'
     << "query terms mean: " << s.mean_query_terms << '\n'
     << "relevant docs/query mean: " << s.mean_relevant_per_query << '\n'
     << "nodes relevant to >=2 queries: " << s.frac_nodes_multi_query * 100.0 << "%\n"
     << "max queries per node: " << s.max_queries_per_node << '\n';
  return os.str();
}

}  // namespace ges::corpus
