#pragma once

#include <string>

#include "corpus/corpus.hpp"

namespace ges::corpus {

/// Summary statistics mirroring the numbers the paper reports for
/// TREC-1,2-AP (§5.3), used to validate the synthetic substitute.
struct CorpusStats {
  size_t nodes = 0;
  size_t docs = 0;
  size_t vocabulary = 0;
  size_t queries = 0;

  double mean_docs_per_node = 0.0;
  double p1_docs_per_node = 0.0;    // paper: 1
  double p99_docs_per_node = 0.0;   // paper: 417
  double mean_unique_terms_per_doc = 0.0;  // paper: ~179
  double mean_query_terms = 0.0;           // paper: ~3.5
  double mean_relevant_per_query = 0.0;

  /// Fraction of nodes holding relevant documents for >= 2 queries
  /// (paper: > 50 %) and the maximum (paper: 12).
  double frac_nodes_multi_query = 0.0;
  size_t max_queries_per_node = 0;
};

CorpusStats compute_stats(const Corpus& corpus);

/// Multi-line human-readable rendering (one "name: value" per line).
std::string format_stats(const CorpusStats& stats);

}  // namespace ges::corpus
