#include "corpus/trec_loader.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>

#include "corpus/df_filter.hpp"
#include "ir/analyzer.hpp"
#include "util/check.hpp"

namespace ges::corpus {

namespace {

/// Trim ASCII whitespace from both ends.
std::string trim(const std::string& s) {
  const auto is_space = [](unsigned char c) { return std::isspace(c) != 0; };
  size_t b = 0;
  size_t e = s.size();
  while (b < e && is_space(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && is_space(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

/// Extract all "<TAG> ... </TAG>" section bodies from an SGML fragment.
std::vector<std::string> sections(const std::string& body, const std::string& tag) {
  std::vector<std::string> out;
  const std::string open = "<" + tag + ">";
  const std::string close = "</" + tag + ">";
  size_t pos = 0;
  for (;;) {
    const size_t b = body.find(open, pos);
    if (b == std::string::npos) break;
    const size_t content = b + open.size();
    const size_t e = body.find(close, content);
    if (e == std::string::npos) break;
    out.push_back(trim(body.substr(content, e - content)));
    pos = e + close.size();
  }
  return out;
}

std::string first_section(const std::string& body, const std::string& tag) {
  auto all = sections(body, tag);
  return all.empty() ? std::string() : std::move(all.front());
}

}  // namespace

std::vector<TrecRawDoc> parse_trec_docs(std::istream& in) {
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string content = buffer.str();

  std::vector<TrecRawDoc> docs;
  for (const auto& body : sections(content, "DOC")) {
    TrecRawDoc doc;
    doc.docno = first_section(body, "DOCNO");
    GES_CHECK_MSG(!doc.docno.empty(), "TREC document without DOCNO");
    doc.author = first_section(body, "BYLINE");
    std::string text;
    for (const auto& t : sections(body, "TEXT")) {
      if (!text.empty()) text += '\n';
      text += t;
    }
    doc.text = std::move(text);
    docs.push_back(std::move(doc));
  }
  return docs;
}

std::vector<TrecRawTopic> parse_trec_topics(std::istream& in) {
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string content = buffer.str();

  std::vector<TrecRawTopic> topics;
  for (const auto& body : sections(content, "top")) {
    TrecRawTopic topic;
    std::string num = first_section(body, "num");
    // The field is conventionally "Number: NNN".
    const size_t colon = num.find(':');
    if (colon != std::string::npos) num = trim(num.substr(colon + 1));
    topic.number = static_cast<uint32_t>(std::strtoul(num.c_str(), nullptr, 10));
    std::string title = first_section(body, "title");
    const size_t tcolon = title.find(':');
    if (tcolon != std::string::npos && title.substr(0, tcolon) == "Topic") {
      title = trim(title.substr(tcolon + 1));
    }
    topic.title = std::move(title);
    if (topic.number != 0 && !topic.title.empty()) topics.push_back(std::move(topic));
  }
  return topics;
}

std::vector<TrecJudgment> parse_trec_qrels(std::istream& in) {
  std::vector<TrecJudgment> out;
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    TrecJudgment j;
    int ignored = 0;
    if (ls >> j.topic >> ignored >> j.docno >> j.relevance) out.push_back(std::move(j));
  }
  return out;
}

Corpus build_corpus_from_trec(const std::vector<TrecRawDoc>& docs,
                              const std::vector<TrecRawTopic>& topics,
                              const std::vector<TrecJudgment>& qrels,
                              double max_df_fraction) {
  Corpus corpus;
  ir::Analyzer analyzer(corpus.dict);

  // Keep only documents with valid author and text; one node per author,
  // in first-seen order (deterministic).
  std::map<std::string, NodeIndex> author_nodes;
  std::map<std::string, ir::DocId> docno_ids;
  for (const auto& raw : docs) {
    if (raw.author.empty() || raw.text.empty()) continue;
    ir::SparseVector counts = analyzer.count_vector(raw.text);
    if (counts.empty()) continue;

    const auto [it, inserted] =
        author_nodes.emplace(raw.author, static_cast<NodeIndex>(author_nodes.size()));
    if (inserted) corpus.node_docs.emplace_back();

    Document doc;
    doc.id = static_cast<ir::DocId>(corpus.docs.size());
    doc.node = it->second;
    doc.counts = std::move(counts);
    doc.vector = doc.counts;
    doc.vector.dampen();
    doc.vector.normalize();
    docno_ids[raw.docno] = doc.id;
    corpus.node_docs[doc.node].push_back(doc.id);
    corpus.docs.push_back(std::move(doc));
  }

  // Queries from topic titles; judgments filtered to surviving documents
  // (the paper removes judgments for documents outside its 80,008 set).
  for (const auto& topic : topics) {
    Query query;
    query.id = topic.number;
    query.vector = analyzer.query_vector(topic.title);
    for (const auto& j : qrels) {
      if (j.topic != topic.number || j.relevance <= 0) continue;
      const auto it = docno_ids.find(j.docno);
      if (it != docno_ids.end()) query.relevant.push_back(it->second);
    }
    std::sort(query.relevant.begin(), query.relevant.end());
    query.relevant.erase(std::unique(query.relevant.begin(), query.relevant.end()),
                         query.relevant.end());
    corpus.queries.push_back(std::move(query));
  }

  if (max_df_fraction < 1.0) remove_frequent_terms(corpus, max_df_fraction);

  return corpus;
}

Corpus load_trec_corpus(const std::string& docs_path, const std::string& topics_path,
                        const std::string& qrels_path) {
  std::ifstream docs_in(docs_path);
  GES_CHECK_MSG(docs_in.good(), "cannot open " << docs_path);
  std::ifstream topics_in(topics_path);
  GES_CHECK_MSG(topics_in.good(), "cannot open " << topics_path);
  std::ifstream qrels_in(qrels_path);
  GES_CHECK_MSG(qrels_in.good(), "cannot open " << qrels_path);

  const auto docs = parse_trec_docs(docs_in);
  const auto topics = parse_trec_topics(topics_in);
  const auto qrels = parse_trec_qrels(qrels_in);
  return build_corpus_from_trec(docs, topics, qrels);
}

}  // namespace ges::corpus
