#include "corpus/trec_loader.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "corpus/df_filter.hpp"
#include "ir/analyzer.hpp"
#include "ir/sharded_term_dictionary.hpp"
#include "util/check.hpp"

namespace ges::corpus {

namespace {

/// Trim ASCII whitespace from both ends.
std::string trim(const std::string& s) {
  const auto is_space = [](unsigned char c) { return std::isspace(c) != 0; };
  size_t b = 0;
  size_t e = s.size();
  while (b < e && is_space(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && is_space(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

/// Extract all "<TAG> ... </TAG>" section bodies from an SGML fragment.
std::vector<std::string> sections(const std::string& body, const std::string& tag) {
  std::vector<std::string> out;
  const std::string open = "<" + tag + ">";
  const std::string close = "</" + tag + ">";
  size_t pos = 0;
  for (;;) {
    const size_t b = body.find(open, pos);
    if (b == std::string::npos) break;
    const size_t content = b + open.size();
    const size_t e = body.find(close, content);
    if (e == std::string::npos) break;
    out.push_back(trim(body.substr(content, e - content)));
    pos = e + close.size();
  }
  return out;
}

std::string first_section(const std::string& body, const std::string& tag) {
  auto all = sections(body, tag);
  return all.empty() ? std::string() : std::move(all.front());
}

}  // namespace

std::vector<TrecRawDoc> parse_trec_docs(std::istream& in) {
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string content = buffer.str();

  std::vector<TrecRawDoc> docs;
  for (const auto& body : sections(content, "DOC")) {
    TrecRawDoc doc;
    doc.docno = first_section(body, "DOCNO");
    GES_CHECK_MSG(!doc.docno.empty(), "TREC document without DOCNO");
    doc.author = first_section(body, "BYLINE");
    std::string text;
    for (const auto& t : sections(body, "TEXT")) {
      if (!text.empty()) text += '\n';
      text += t;
    }
    doc.text = std::move(text);
    docs.push_back(std::move(doc));
  }
  return docs;
}

std::vector<TrecRawTopic> parse_trec_topics(std::istream& in) {
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string content = buffer.str();

  std::vector<TrecRawTopic> topics;
  for (const auto& body : sections(content, "top")) {
    TrecRawTopic topic;
    std::string num = first_section(body, "num");
    // The field is conventionally "Number: NNN".
    const size_t colon = num.find(':');
    if (colon != std::string::npos) num = trim(num.substr(colon + 1));
    topic.number = static_cast<uint32_t>(std::strtoul(num.c_str(), nullptr, 10));
    std::string title = first_section(body, "title");
    const size_t tcolon = title.find(':');
    if (tcolon != std::string::npos && title.substr(0, tcolon) == "Topic") {
      title = trim(title.substr(tcolon + 1));
    }
    topic.title = std::move(title);
    if (topic.number != 0 && !topic.title.empty()) topics.push_back(std::move(topic));
  }
  return topics;
}

std::vector<TrecJudgment> parse_trec_qrels(std::istream& in) {
  std::vector<TrecJudgment> out;
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    TrecJudgment j;
    int ignored = 0;
    if (ls >> j.topic >> ignored >> j.docno >> j.relevance) out.push_back(std::move(j));
  }
  return out;
}

Corpus build_corpus_from_trec(const std::vector<TrecRawDoc>& docs,
                              const std::vector<TrecRawTopic>& topics,
                              const std::vector<TrecJudgment>& qrels,
                              double max_df_fraction) {
  return build_corpus_from_trec(docs, topics, qrels, max_df_fraction,
                                &util::global_pool());
}

Corpus build_corpus_from_trec(const std::vector<TrecRawDoc>& docs,
                              const std::vector<TrecRawTopic>& topics,
                              const std::vector<TrecJudgment>& qrels,
                              double max_df_fraction, util::ThreadPool* pool) {
  Corpus corpus;

  // Phase 1 — parallel analysis. Each document is tokenized / stopped /
  // stemmed without touching the global dictionary; its unique terms (in
  // first-occurrence order) are interned into a sharded dictionary under
  // provisional ids, tagged with (document index, within-document
  // first-seen rank). Those coordinates are a pure function of the input,
  // so the later freeze pass is thread-count invariant.
  struct AnalyzedDoc {
    std::vector<ir::ProvisionalTermId> terms;  // unique, first-seen order
    std::vector<uint32_t> counts;              // parallel to `terms`
    bool analyzed = false;                     // had author and text
  };
  ir::ShardedTermDictionary sharded;
  // One immutable analyzer shared by all workers: stemmed_tokens() never
  // touches the dictionary, so the scratch dict stays empty.
  ir::TermDictionary scratch_dict;
  const ir::Analyzer analyzer_nodict(scratch_dict);
  std::vector<AnalyzedDoc> analyzed(docs.size());
  util::for_each_index(pool, docs.size(), [&](size_t i) {
    const auto& raw = docs[i];
    if (raw.author.empty() || raw.text.empty()) return;
    AnalyzedDoc& out = analyzed[i];
    out.analyzed = true;
    const auto tokens = analyzer_nodict.stemmed_tokens(raw.text);
    // Doc-local interning: unique terms in first-seen order. Views into
    // `tokens` are stable — the vector is fully built above.
    std::unordered_map<std::string_view, uint32_t> local;
    local.reserve(tokens.size());
    std::vector<std::string_view> uniques;
    for (const auto& token : tokens) {
      const auto [it, inserted] =
          local.emplace(std::string_view(token), static_cast<uint32_t>(uniques.size()));
      if (inserted) {
        uniques.push_back(token);
        out.counts.push_back(1);
      } else {
        ++out.counts[it->second];
      }
    }
    out.terms.reserve(uniques.size());
    for (uint32_t u = 0; u < uniques.size(); ++u) {
      out.terms.push_back(sharded.intern(uniques[u], i, u));
    }
  });

  // Phase 2 — serial freeze: global dense TermIds in canonical
  // first-occurrence order (bit-identical to serial interning).
  const auto remap = sharded.freeze_into(corpus.dict);

  // Phase 3 — parallel vector construction under the final ids.
  std::vector<ir::SparseVector> doc_counts(docs.size());
  util::for_each_index(pool, docs.size(), [&](size_t i) {
    const AnalyzedDoc& a = analyzed[i];
    if (!a.analyzed || a.terms.empty()) return;
    std::vector<std::pair<ir::TermId, uint32_t>> pairs;
    pairs.reserve(a.terms.size());
    for (size_t t = 0; t < a.terms.size(); ++t) {
      pairs.push_back({remap[a.terms[t].shard][a.terms[t].slot], a.counts[t]});
    }
    doc_counts[i] = ir::SparseVector::from_counts(pairs);
  });

  // Phase 4 — serial assembly: one node per author in first-seen order,
  // dense DocIds in input order, exactly as the sequential loop.
  std::map<std::string, NodeIndex> author_nodes;
  std::map<std::string, ir::DocId> docno_ids;
  for (size_t i = 0; i < docs.size(); ++i) {
    if (doc_counts[i].empty()) continue;

    const auto [it, inserted] = author_nodes.emplace(
        docs[i].author, static_cast<NodeIndex>(author_nodes.size()));
    if (inserted) corpus.node_docs.emplace_back();

    Document doc;
    doc.id = static_cast<ir::DocId>(corpus.docs.size());
    doc.node = it->second;
    doc.counts = std::move(doc_counts[i]);
    doc.vector = doc.counts;
    doc.vector.dampen();
    doc.vector.normalize();
    docno_ids[docs[i].docno] = doc.id;
    corpus.node_docs[doc.node].push_back(doc.id);
    corpus.docs.push_back(std::move(doc));
  }

  // Queries from topic titles; query terms intern serially after all
  // document terms, matching the sequential build order. Judgments are
  // filtered to surviving documents (the paper removes judgments for
  // documents outside its 80,008 set).
  ir::Analyzer analyzer(corpus.dict);
  for (const auto& topic : topics) {
    Query query;
    query.id = topic.number;
    query.vector = analyzer.query_vector(topic.title);
    for (const auto& j : qrels) {
      if (j.topic != topic.number || j.relevance <= 0) continue;
      const auto it = docno_ids.find(j.docno);
      if (it != docno_ids.end()) query.relevant.push_back(it->second);
    }
    std::sort(query.relevant.begin(), query.relevant.end());
    query.relevant.erase(std::unique(query.relevant.begin(), query.relevant.end()),
                         query.relevant.end());
    corpus.queries.push_back(std::move(query));
  }

  if (max_df_fraction < 1.0) remove_frequent_terms(corpus, max_df_fraction, 10, pool);

  return corpus;
}

Corpus load_trec_corpus(const std::string& docs_path, const std::string& topics_path,
                        const std::string& qrels_path) {
  std::ifstream docs_in(docs_path);
  GES_CHECK_MSG(docs_in.good(), "cannot open " << docs_path);
  std::ifstream topics_in(topics_path);
  GES_CHECK_MSG(topics_in.good(), "cannot open " << topics_path);
  std::ifstream qrels_in(qrels_path);
  GES_CHECK_MSG(qrels_in.good(), "cannot open " << qrels_path);

  const auto docs = parse_trec_docs(docs_in);
  const auto topics = parse_trec_topics(topics_in);
  const auto qrels = parse_trec_qrels(qrels_in);
  return build_corpus_from_trec(docs, topics, qrels);
}

}  // namespace ges::corpus
