#include "corpus/df_filter.hpp"

#include <algorithm>
#include <unordered_map>

#include "util/check.hpp"

namespace ges::corpus {

std::unordered_set<ir::TermId> remove_frequent_terms(Corpus& corpus,
                                                     double max_df_fraction,
                                                     size_t min_df_absolute,
                                                     util::ThreadPool* pool) {
  GES_CHECK(max_df_fraction > 0.0 && max_df_fraction <= 1.0);
  std::unordered_set<ir::TermId> removed;
  if (corpus.docs.empty()) return removed;

  std::unordered_map<ir::TermId, size_t> df;
  for (const auto& doc : corpus.docs) {
    for (const ir::TermId term : doc.counts.terms()) ++df[term];
  }
  const double limit =
      std::max(max_df_fraction * static_cast<double>(corpus.docs.size()),
               static_cast<double>(min_df_absolute));
  for (const auto& [term, count] : df) {
    if (static_cast<double>(count) > limit) removed.insert(term);
  }
  if (removed.empty()) return removed;

  // Per-document rebuild: documents are independent and `df` / `removed`
  // are read-only from here on, so this fans out across the pool.
  util::for_each_index(pool, corpus.docs.size(), [&](size_t d) {
    auto& doc = corpus.docs[d];
    std::vector<ir::TermWeight> kept;
    kept.reserve(doc.counts.size());
    ir::TermWeight fallback{ir::kInvalidTerm, 0.0f};
    size_t fallback_df = ~size_t{0};
    for (const auto& e : doc.counts.entries()) {
      const auto it = df.find(e.term);
      if (removed.count(e.term) == 0) {
        kept.push_back(e);
      } else if (it->second < fallback_df) {
        fallback = e;
        fallback_df = it->second;
      }
    }
    if (kept.empty() && fallback.term != ir::kInvalidTerm) {
      kept.push_back(fallback);  // never leave a document termless
    }
    doc.counts = ir::SparseVector::from_pairs(std::move(kept));
    doc.vector = doc.counts;
    doc.vector.dampen();
    doc.vector.normalize();
  });

  for (auto& query : corpus.queries) {
    std::vector<ir::TermWeight> kept;
    for (const auto& e : query.vector.entries()) {
      if (removed.count(e.term) == 0) kept.push_back(e);
    }
    if (kept.empty()) continue;  // keep an otherwise-empty query unfiltered
    query.vector = ir::SparseVector::from_pairs(std::move(kept));
    query.vector.normalize();
  }

  return removed;
}

}  // namespace ges::corpus
