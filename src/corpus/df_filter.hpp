#pragma once

#include <unordered_set>
#include <vector>

#include "corpus/corpus.hpp"
#include "util/thread_pool.hpp"

namespace ges::corpus {

/// Remove "highly frequent words" from a corpus (paper §3: "stop words
/// and highly frequent words are removed from the term vector").
///
/// Terms whose document frequency exceeds `max_df_fraction` of the corpus
/// — and also exceeds `min_df_absolute` documents, so tiny corpora and
/// test fixtures are never gutted — are stripped from every document's
/// counts (the dampened-normalized vectors are rebuilt) and from every
/// query vector (re-normalized; queries that would become empty are left
/// untouched). Documents made empty by the filter keep a single
/// lowest-df term so no document vanishes. Returns the set of removed
/// terms.
/// `pool` parallelizes the per-document vector rebuild (each document is
/// independent; the df table is read-only by then). nullptr = serial; the
/// result is identical either way.
std::unordered_set<ir::TermId> remove_frequent_terms(Corpus& corpus,
                                                     double max_df_fraction,
                                                     size_t min_df_absolute = 10,
                                                     util::ThreadPool* pool = nullptr);

}  // namespace ges::corpus
