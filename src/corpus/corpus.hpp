#pragma once

#include <cstdint>
#include <vector>

#include "ir/sparse_vector.hpp"
#include "ir/term_dictionary.hpp"
#include "ir/types.hpp"

namespace ges::corpus {

/// Index of a node (author) in the corpus, 0-based and dense.
using NodeIndex = uint32_t;

/// Topic identifier in the generative model (kNoTopic for loaded corpora).
using TopicId = uint32_t;
inline constexpr TopicId kNoTopic = ~TopicId{0};

/// One document: raw term counts (needed to build node vectors, paper
/// §4.2) plus the final normalized dampened-tf vector used for retrieval.
struct Document {
  ir::DocId id = ir::kInvalidDoc;
  NodeIndex node = 0;
  TopicId topic = kNoTopic;  // generative ground truth; kNoTopic if unknown
  ir::SparseVector counts;   // raw term frequencies
  ir::SparseVector vector;   // 1+ln(tf), L2-normalized
};

/// One evaluation query with its relevance judgments.
struct Query {
  uint32_t id = 0;
  TopicId topic = kNoTopic;
  ir::SparseVector vector;            // normalized query vector
  std::vector<ir::DocId> relevant;    // judged relevant docs, ascending
};

/// A corpus: documents distributed over nodes by author (paper §5.3),
/// plus queries and judgments. DocIds are dense indices into `docs`.
struct Corpus {
  ir::TermDictionary dict;
  std::vector<Document> docs;
  std::vector<std::vector<ir::DocId>> node_docs;  // per-node document ids
  std::vector<Query> queries;

  size_t num_nodes() const { return node_docs.size(); }
  size_t num_docs() const { return docs.size(); }
};

}  // namespace ges::corpus
