#pragma once

#include <functional>
#include <string>
#include <vector>

#include "corpus/corpus.hpp"
#include "eval/metrics.hpp"
#include "p2p/network.hpp"
#include "p2p/search_trace.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace ges::eval {

/// A search system under evaluation: runs one query exhaustively from the
/// given initiator (probe budget unbounded), returning the instrumented
/// trace. Implementations wrap GES, SETS, Random, flooding, ...
using Searcher = std::function<p2p::SearchTrace(
    const corpus::Query& query, p2p::NodeId initiator, util::Rng& rng)>;

/// The paper's processing-cost grid (fractions of nodes probed).
std::vector<double> standard_cost_grid();

/// One recall-vs-cost series (Fig. 1 / Fig. 2a): recall is the mean over
/// queries of per-query recall restricted to the first cost*N probes.
struct RecallCostCurve {
  std::vector<double> cost;    // fractions of nodes probed
  std::vector<double> recall;  // mean recall at each cost

  /// Linear interpolation of recall at an arbitrary cost.
  double recall_at(double cost_fraction) const;
};

/// Aggregate search-cost statistics for diagnostics (messages per query).
struct SearchCostStats {
  double mean_walk_steps = 0.0;
  double mean_flood_messages = 0.0;
  double mean_targets = 0.0;
};

/// Run every corpus query once (exhaustively) through `searcher`, from a
/// per-query random alive initiator (derived from `seed`), and build the
/// recall-vs-cost curve over `grid`. Queries with no relevant documents
/// are skipped.
RecallCostCurve recall_cost_curve(const corpus::Corpus& corpus,
                                  const p2p::Network& network, const Searcher& searcher,
                                  const std::vector<double>& grid, uint64_t seed,
                                  SearchCostStats* cost_stats = nullptr);

/// Per-query recall at a single cost level — the data behind the recall
/// CDF of Fig. 2b.
std::vector<double> per_query_recall_at_cost(const corpus::Corpus& corpus,
                                             const p2p::Network& network,
                                             const Searcher& searcher, double cost,
                                             uint64_t seed);

/// Render curves side by side as a paper-style table: one row per cost,
/// one column per named series.
util::Table curves_table(const std::vector<std::string>& names,
                         const std::vector<RecallCostCurve>& curves);

/// A recall-vs-cost curve with across-seed spread.
struct CurveWithError {
  std::vector<double> cost;
  std::vector<double> mean;
  std::vector<double> stddev;
  size_t runs = 0;

  /// The mean as a plain curve (for curves_table / recall_at).
  RecallCostCurve mean_curve() const;
};

/// Average several same-grid curves (e.g. one per seed) into a mean ±
/// stddev series. All inputs must share the cost grid.
CurveWithError average_curves(const std::vector<RecallCostCurve>& curves);

}  // namespace ges::eval
