#include "eval/experiment.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace ges::eval {

std::vector<double> standard_cost_grid() {
  return {0.02, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35,
          0.40, 0.45, 0.50, 0.60, 0.70, 0.80, 0.90, 1.00};
}

double RecallCostCurve::recall_at(double cost_fraction) const {
  GES_CHECK(!cost.empty());
  if (cost_fraction <= cost.front()) return recall.front();
  if (cost_fraction >= cost.back()) return recall.back();
  for (size_t i = 1; i < cost.size(); ++i) {
    if (cost_fraction <= cost[i]) {
      const double t = (cost_fraction - cost[i - 1]) / (cost[i] - cost[i - 1]);
      return recall[i - 1] + t * (recall[i] - recall[i - 1]);
    }
  }
  return recall.back();
}

namespace {

/// A random alive initiator for query `index`, deterministic in `seed`.
/// `alive` is the experiment-wide snapshot of alive nodes: the O(n)
/// rebuild happens once per experiment, not once per query.
p2p::NodeId pick_initiator(const std::vector<p2p::NodeId>& alive, uint64_t seed,
                           size_t index) {
  util::Rng rng(util::derive_seed(seed, 0xA11CE000 + index));
  return alive[rng.index(alive.size())];
}

std::vector<size_t> probe_counts_for(const std::vector<double>& grid, size_t nodes) {
  std::vector<size_t> counts;
  counts.reserve(grid.size());
  for (const double c : grid) {
    GES_CHECK(c >= 0.0 && c <= 1.0);
    counts.push_back(static_cast<size_t>(std::llround(c * static_cast<double>(nodes))));
  }
  return counts;
}

}  // namespace

RecallCostCurve recall_cost_curve(const corpus::Corpus& corpus,
                                  const p2p::Network& network, const Searcher& searcher,
                                  const std::vector<double>& grid, uint64_t seed,
                                  SearchCostStats* cost_stats) {
  const auto counts = probe_counts_for(grid, network.alive_count());
  const auto alive = network.alive_nodes();
  GES_CHECK(!alive.empty());

  // Queries are independent and the network is read-only during search,
  // so evaluate them on the shared pool. Results land in per-query
  // slots, keeping the aggregation deterministic.
  struct QueryResult {
    bool evaluated = false;
    std::vector<double> recalls;
    double walk_steps = 0.0;
    double flood_messages = 0.0;
    double targets = 0.0;
  };
  std::vector<QueryResult> results(corpus.queries.size());
  util::global_pool().parallel_for(corpus.queries.size(), [&](size_t qi) {
    const auto& query = corpus.queries[qi];
    if (query.relevant.empty()) return;
    util::Rng rng(util::derive_seed(seed, 0xBEEF0000 + qi));
    const auto trace = searcher(query, pick_initiator(alive, seed, qi), rng);
    const Judgment judgment(query.relevant);
    QueryResult& r = results[qi];
    r.recalls = recall_at_probe_counts(trace, judgment, counts);
    r.walk_steps = static_cast<double>(trace.walk_steps);
    r.flood_messages = static_cast<double>(trace.flood_messages);
    r.targets = static_cast<double>(trace.target_count);
    r.evaluated = true;
  });

  std::vector<double> recall_sum(grid.size(), 0.0);
  size_t evaluated = 0;
  double walk_sum = 0.0;
  double flood_sum = 0.0;
  double target_sum = 0.0;
  for (const auto& r : results) {
    if (!r.evaluated) continue;
    for (size_t i = 0; i < r.recalls.size(); ++i) recall_sum[i] += r.recalls[i];
    walk_sum += r.walk_steps;
    flood_sum += r.flood_messages;
    target_sum += r.targets;
    ++evaluated;
  }
  GES_CHECK_MSG(evaluated > 0, "no queries with relevant documents");

  RecallCostCurve curve;
  curve.cost = grid;
  curve.recall.resize(grid.size());
  for (size_t i = 0; i < grid.size(); ++i) {
    curve.recall[i] = recall_sum[i] / static_cast<double>(evaluated);
  }
  if (cost_stats != nullptr) {
    cost_stats->mean_walk_steps = walk_sum / static_cast<double>(evaluated);
    cost_stats->mean_flood_messages = flood_sum / static_cast<double>(evaluated);
    cost_stats->mean_targets = target_sum / static_cast<double>(evaluated);
  }
  return curve;
}

std::vector<double> per_query_recall_at_cost(const corpus::Corpus& corpus,
                                             const p2p::Network& network,
                                             const Searcher& searcher, double cost,
                                             uint64_t seed) {
  const size_t probes = static_cast<size_t>(
      std::llround(cost * static_cast<double>(network.alive_count())));
  const auto alive = network.alive_nodes();
  GES_CHECK(!alive.empty());

  // Same per-query-slot pattern as recall_cost_curve: parallel
  // evaluation, order-preserving aggregation.
  struct QueryResult {
    bool evaluated = false;
    double recall = 0.0;
  };
  std::vector<QueryResult> results(corpus.queries.size());
  util::global_pool().parallel_for(corpus.queries.size(), [&](size_t qi) {
    const auto& query = corpus.queries[qi];
    if (query.relevant.empty()) return;
    util::Rng rng(util::derive_seed(seed, 0xBEEF0000 + qi));
    const auto trace = searcher(query, pick_initiator(alive, seed, qi), rng);
    results[qi].recall = recall_at_probes(trace, Judgment(query.relevant), probes);
    results[qi].evaluated = true;
  });

  std::vector<double> recalls;
  recalls.reserve(results.size());
  for (const auto& r : results) {
    if (r.evaluated) recalls.push_back(r.recall);
  }
  return recalls;
}

RecallCostCurve CurveWithError::mean_curve() const {
  RecallCostCurve c;
  c.cost = cost;
  c.recall = mean;
  return c;
}

CurveWithError average_curves(const std::vector<RecallCostCurve>& curves) {
  GES_CHECK(!curves.empty());
  CurveWithError out;
  out.cost = curves[0].cost;
  out.runs = curves.size();
  out.mean.assign(out.cost.size(), 0.0);
  out.stddev.assign(out.cost.size(), 0.0);
  for (const auto& c : curves) {
    GES_CHECK_MSG(c.cost == out.cost, "curves must share the cost grid");
    for (size_t i = 0; i < c.recall.size(); ++i) out.mean[i] += c.recall[i];
  }
  for (auto& m : out.mean) m /= static_cast<double>(curves.size());
  if (curves.size() >= 2) {
    for (size_t i = 0; i < out.cost.size(); ++i) {
      double sq = 0.0;
      for (const auto& c : curves) {
        const double d = c.recall[i] - out.mean[i];
        sq += d * d;
      }
      out.stddev[i] = std::sqrt(sq / static_cast<double>(curves.size() - 1));
    }
  }
  return out;
}

util::Table curves_table(const std::vector<std::string>& names,
                         const std::vector<RecallCostCurve>& curves) {
  GES_CHECK(!curves.empty());
  GES_CHECK(names.size() == curves.size());
  std::vector<std::string> header{"cost(%nodes)"};
  for (const auto& n : names) header.push_back(n + " recall(%)");
  util::Table table(std::move(header));
  for (size_t i = 0; i < curves[0].cost.size(); ++i) {
    std::vector<std::string> row{util::cell(curves[0].cost[i] * 100.0, 0)};
    for (const auto& c : curves) {
      GES_CHECK(c.cost.size() == curves[0].cost.size());
      row.push_back(util::cell(c.recall[i] * 100.0, 1));
    }
    table.add_row(std::move(row));
  }
  return table;
}

}  // namespace ges::eval
