#include "eval/metrics.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace ges::eval {

double recall(const p2p::SearchTrace& trace, const Judgment& judgment) {
  return recall_at_probes(trace, judgment, trace.probes());
}

double recall_at_probes(const p2p::SearchTrace& trace, const Judgment& judgment,
                        size_t probes) {
  if (judgment.total_relevant() == 0) return 0.0;
  size_t hits = 0;
  for (const auto& r : trace.retrieved) {
    if (r.probe_index < probes && judgment.is_relevant(r.doc)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(judgment.total_relevant());
}

std::vector<double> recall_at_probe_counts(const p2p::SearchTrace& trace,
                                           const Judgment& judgment,
                                           const std::vector<size_t>& probe_counts) {
  std::vector<double> out(probe_counts.size(), 0.0);
  if (judgment.total_relevant() == 0) return out;

  // Histogram of relevant hits per probe index, then prefix sums.
  std::vector<size_t> hits_at(trace.probes() + 1, 0);
  for (const auto& r : trace.retrieved) {
    if (judgment.is_relevant(r.doc)) ++hits_at[r.probe_index];
  }
  std::vector<size_t> prefix(hits_at.size() + 1, 0);
  for (size_t i = 0; i < hits_at.size(); ++i) prefix[i + 1] = prefix[i] + hits_at[i];

  // prefix[p] = hits among probe indexes < p.
  const auto total = static_cast<double>(judgment.total_relevant());
  for (size_t i = 0; i < probe_counts.size(); ++i) {
    const size_t p = std::min(probe_counts[i], trace.probes());
    out[i] = static_cast<double>(prefix[p]) / total;
  }
  return out;
}

std::vector<p2p::RetrievedDoc> top_k_results(const p2p::SearchTrace& trace,
                                             size_t k) {
  std::vector<p2p::RetrievedDoc> ranked = trace.retrieved;
  std::sort(ranked.begin(), ranked.end(),
            [](const p2p::RetrievedDoc& a, const p2p::RetrievedDoc& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.doc < b.doc;
            });
  if (ranked.size() > k) ranked.resize(k);
  return ranked;
}

double precision_at(const p2p::SearchTrace& trace, const Judgment& judgment, size_t r) {
  GES_CHECK(r > 0);
  const auto ranked = top_k_results(trace, r);
  size_t hits = 0;
  for (const auto& doc : ranked) {
    if (judgment.is_relevant(doc.doc)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(r);
}

double processing_cost(const p2p::SearchTrace& trace, size_t network_nodes) {
  GES_CHECK(network_nodes > 0);
  return static_cast<double>(trace.probes()) / static_cast<double>(network_nodes);
}

}  // namespace ges::eval
