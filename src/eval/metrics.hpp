#pragma once

#include <cstddef>
#include <unordered_set>
#include <vector>

#include "ir/types.hpp"
#include "p2p/search_trace.hpp"

namespace ges::eval {

/// Relevance judgments of one query, with O(1) membership tests.
class Judgment {
 public:
  explicit Judgment(const std::vector<ir::DocId>& relevant)
      : relevant_(relevant.begin(), relevant.end()) {}

  bool is_relevant(ir::DocId doc) const { return relevant_.count(doc) > 0; }
  size_t total_relevant() const { return relevant_.size(); }

 private:
  std::unordered_set<ir::DocId> relevant_;
};

/// Recall of the whole trace: retrieved relevant / relevant (paper §5.2).
/// 0 when there are no relevant documents.
double recall(const p2p::SearchTrace& trace, const Judgment& judgment);

/// Recall restricted to the first `probes` probed nodes — the y-value of
/// the paper's recall-vs-processing-cost plots at cost = probes / N.
double recall_at_probes(const p2p::SearchTrace& trace, const Judgment& judgment,
                        size_t probes);

/// Recall at each of several probe counts (single pass).
std::vector<double> recall_at_probe_counts(const p2p::SearchTrace& trace,
                                           const Judgment& judgment,
                                           const std::vector<size_t>& probe_counts);

/// Precision@r (paper §5.2): fraction of the r highest-scoring retrieved
/// documents that are relevant. Documents are ranked by descending score
/// (ties by DocId); duplicates cannot occur since each document is
/// evaluated at exactly one node.
double precision_at(const p2p::SearchTrace& trace, const Judgment& judgment, size_t r);

/// Query processing cost (paper §5.2): fraction of nodes probed.
double processing_cost(const p2p::SearchTrace& trace, size_t network_nodes);

/// The k highest-scoring retrieved documents of a trace (ties by DocId)
/// — the ranked list the query initiator presents to the user
/// ("highest relevance ranking documents", paper §4.5).
std::vector<p2p::RetrievedDoc> top_k_results(const p2p::SearchTrace& trace, size_t k);

}  // namespace ges::eval
